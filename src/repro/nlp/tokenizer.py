"""Offset-preserving tokenizer.

Falcon's downstream heuristics (paragraph scoring, answer-window
construction) reason about *token positions* and *byte offsets* — e.g. "the
answer is within 50 bytes of text" and "inter-keyword distance".  The
tokenizer therefore keeps, for each token, its character span in the source
text in addition to its surface form.
"""

from __future__ import annotations

import re
import typing as t
from dataclasses import dataclass

__all__ = ["Token", "tokenize", "sentences", "is_capitalized", "is_number_token"]

# Words (incl. internal apostrophes/hyphens), numbers (incl. decimals and
# thousands separators), and single punctuation marks.
_TOKEN_RE = re.compile(
    r"""
    \$?\d+(?:,\d{3})*(?:\.\d+)?%?  # numbers: $1,234.56  12%  1999
    | [A-Za-z]+(?:[''][A-Za-z]+)*  # words with internal apostrophes
    | [.,;:!?"()\[\]{}-]           # punctuation, one char at a time
    """,
    re.VERBOSE,
)

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z$\d\"'])")


@dataclass(frozen=True, slots=True)
class Token:
    """A token with its surface form and character span."""

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        return self.text[0].isalpha()

    @property
    def is_punct(self) -> bool:
        return not (self.text[0].isalnum() or self.text[0] == "$")

    def __len__(self) -> int:
        return self.end - self.start


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into :class:`Token` objects with character offsets."""
    return [
        Token(m.group(0), m.start(), m.end()) for m in _TOKEN_RE.finditer(text)
    ]


def sentences(text: str) -> list[tuple[int, int]]:
    """Return (start, end) character spans of sentences in ``text``.

    A light heuristic splitter: sentence boundaries at ``.!?`` followed by
    whitespace and an upper-case/number/quote start.  Good enough for the
    synthetic corpus, whose generator emits well-formed sentences.
    """
    spans: list[tuple[int, int]] = []
    start = 0
    for m in _SENTENCE_RE.finditer(text):
        spans.append((start, m.start()))
        start = m.end()
    tail = text[start:].strip()
    if tail:
        spans.append((start, len(text)))
    return spans


def is_capitalized(token: Token) -> bool:
    """True for word tokens beginning with an upper-case letter."""
    return token.is_word and token.text[0].isupper()


def is_number_token(token: Token) -> bool:
    """True for numeric tokens (possibly with $, %, separators)."""
    stripped = token.text.lstrip("$").rstrip("%")
    return bool(stripped) and stripped[0].isdigit()
