"""Process-wide stem vocabulary: string terms interned to dense int ids.

Production engines code their dictionaries as integer term ids so that
postings, per-document term arrays, and query evaluation all operate on
flat integer arrays instead of hash-table lookups over strings
(cs/0407053).  :class:`Vocabulary` is that mapping for the whole process:
every stem (and raw non-word token) the indexer sees is interned once and
identified by a dense non-negative id thereafter.

Ids are assigned in first-intern order and are **stable for the lifetime
of the process** — re-interning an already-known term always returns the
same id, and ids are never recycled.  The id space is therefore dense
(``0 .. len(vocab) - 1``), which is what lets the packed index layers in
:mod:`repro.retrieval.inverted_index` use ids directly as array values.

Ids are *process-local*: a serialized index must carry its term table and
remap on load (see :mod:`repro.retrieval.packing`).
"""

from __future__ import annotations

import typing as t

__all__ = ["Vocabulary", "SHARED_VOCABULARY", "MISSING_ID"]

#: Sentinel returned by :meth:`Vocabulary.lookup` for unknown terms.  It is
#: negative, so it can flow straight into bisect probes over (non-negative)
#: packed id arrays and simply never match.
MISSING_ID = -1


class Vocabulary:
    """Bidirectional term <-> dense-id interner.

    ``intern`` assigns (or recalls) an id; ``lookup`` never assigns.  The
    structure only ever grows — the working vocabulary of a corpus is
    bounded and shared, unlike the per-query stem stream, which is why the
    stem *cache* is an LRU but the vocabulary is not.
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self, terms: t.Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._terms: list[str] = []
        for term in terms:
            self.intern(term)

    def intern(self, term: str) -> int:
        """Id of ``term``, assigning the next dense id on first sight."""
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
        return tid

    def lookup(self, term: str) -> int:
        """Id of ``term``, or :data:`MISSING_ID` — never assigns."""
        return self._ids.get(term, MISSING_ID)

    def term(self, tid: int) -> str:
        """The term interned under ``tid`` (raises IndexError if unknown)."""
        if tid < 0:
            raise IndexError(f"no term for sentinel id {tid}")
        return self._terms[tid]

    def terms(self, ids: t.Iterable[int]) -> tuple[str, ...]:
        """Terms for a sequence of ids, in order."""
        terms = self._terms
        return tuple(terms[i] for i in ids)

    def table(self) -> list[str]:
        """A copy of the full term table, index == id (for serialization)."""
        return list(self._terms)

    def matches_prefix(self, table: t.Sequence[str]) -> bool:
        """True iff this vocabulary starts with exactly ``table``.

        When a serialized index's term table is a prefix of the live
        vocabulary, every stored id is already valid here and attaching
        needs no remapping — the common case for freshly forked/spawned
        workers that attach before interning anything else.
        """
        n = len(table)
        return len(self._terms) >= n and self._terms[:n] == list(table)

    def __contains__(self, term: str) -> bool:
        return term in self._ids

    def __len__(self) -> int:
        return len(self._terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary({len(self._terms)} terms)"


#: Process-wide vocabulary shared by every index built in this process.
SHARED_VOCABULARY = Vocabulary()
