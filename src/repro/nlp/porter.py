"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

Falcon's Boolean retrieval matches morphological variants of the question
keywords; classic IR systems of the era (including Zprise, the engine under
Falcon's paragraph retrieval) used Porter stemming for exactly this.  The
implementation below follows the original five-step definition.

Reference: M. F. Porter, "An algorithm for suffix stripping", Program 14(3)
1980, 130-137.
"""

from __future__ import annotations

__all__ = ["stem"]

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem_: str) -> int:
    """The 'measure' m of a word: number of VC sequences."""
    m = 0
    i = 0
    n = len(stem_)
    # Skip initial consonants.
    while i < n and _is_consonant(stem_, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem_, i):
            i += 1
        if i >= n:
            break
        m += 1
        # Consonant run.
        while i < n and _is_consonant(stem_, i):
            i += 1
    return m


def _contains_vowel(stem_: str) -> bool:
    return any(not _is_consonant(stem_, i) for i in range(len(stem_)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """consonant-vowel-consonant where final consonant is not w, x or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem_ = word[:-3]
        if _measure(stem_) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2 = [
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
]

_STEP3 = [
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
]

_STEP4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _apply_rules(word: str, rules: list[tuple[str, str]], min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem_ = word[: len(word) - len(suffix)]
            if _measure(stem_) > min_measure - 1:
                return stem_ + replacement
            return word
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4:
        if word.endswith(suffix):
            stem_ = word[: len(word) - len(suffix)]
            if _measure(stem_) > 1:
                return stem_
            return word
    if word.endswith("ion"):
        stem_ = word[:-3]
        if stem_ and stem_[-1] in "st" and _measure(stem_) > 1:
            return stem_
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem_ = word[:-1]
        m = _measure(stem_)
        if m > 1 or (m == 1 and not _ends_cvc(stem_)):
            return stem_
    return word


def _step5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Return the Porter stem of ``word`` (lower-cased).

    Words of length <= 2 are returned unchanged, as in the original paper.
    """
    word = word.lower()
    if len(word) <= 2 or not word.isalpha():
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _apply_rules(word, _STEP2, min_measure=1)
    word = _apply_rules(word, _STEP3, min_measure=1)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word
