"""Question classification: expected-answer-type detection.

"The main role of the Question Processing module is to identify the answer
type expected (i.e. LOCATION, PERSON, etc.)" — Section 2.1.  Falcon used a
semantic taxonomy over WordNet; our substitute is a transparent rule
cascade over the question's leading words plus a head-noun lexicon, which
covers the factual TREC-8/9 question styles the paper exercises (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .entities import EntityType
from .stopwords import is_stopword
from .tokenizer import tokenize

__all__ = ["classify_question", "QuestionClassification", "HEAD_NOUN_TYPES"]


#: Head nouns that determine the answer type of "what/which <noun> ..."
#: questions, e.g. "What city hosted the games?" -> LOCATION.
HEAD_NOUN_TYPES: dict[str, EntityType] = {
    # locations
    "city": EntityType.LOCATION,
    "cities": EntityType.LOCATION,
    "country": EntityType.LOCATION,
    "countries": EntityType.LOCATION,
    "state": EntityType.LOCATION,
    "continent": EntityType.LOCATION,
    "river": EntityType.LOCATION,
    "mountain": EntityType.LOCATION,
    "capital": EntityType.LOCATION,
    "place": EntityType.LOCATION,
    "island": EntityType.LOCATION,
    # people
    "person": EntityType.PERSON,
    "man": EntityType.PERSON,
    "woman": EntityType.PERSON,
    "president": EntityType.PERSON,
    "actor": EntityType.PERSON,
    "actress": EntityType.PERSON,
    "author": EntityType.PERSON,
    "writer": EntityType.PERSON,
    "scientist": EntityType.PERSON,
    "inventor": EntityType.PERSON,
    "leader": EntityType.PERSON,
    "king": EntityType.PERSON,
    "queen": EntityType.PERSON,
    "explorer": EntityType.PERSON,
    "composer": EntityType.PERSON,
    "painter": EntityType.PERSON,
    # organizations
    "company": EntityType.ORGANIZATION,
    "organization": EntityType.ORGANIZATION,
    "university": EntityType.ORGANIZATION,
    "agency": EntityType.ORGANIZATION,
    "team": EntityType.ORGANIZATION,
    # dates / times
    "year": EntityType.DATE,
    "date": EntityType.DATE,
    "day": EntityType.DATE,
    "month": EntityType.DATE,
    # quantities
    "population": EntityType.NUMBER,
    "height": EntityType.DISTANCE,
    "length": EntityType.DISTANCE,
    "distance": EntityType.DISTANCE,
    "cost": EntityType.MONEY,
    "price": EntityType.MONEY,
    # domain classes from Table 1
    "disease": EntityType.DISEASE,
    "illness": EntityType.DISEASE,
    "syndrome": EntityType.DISEASE,
    "nationality": EntityType.NATIONALITY,
    "product": EntityType.PRODUCT,
    "invention": EntityType.PRODUCT,
}


@dataclass(frozen=True, slots=True)
class QuestionClassification:
    """Outcome of answer-type detection."""

    answer_type: EntityType
    #: The rule that fired — useful for tests and error analysis.
    rule: str


def classify_question(question: str) -> QuestionClassification:
    """Detect the expected answer type of a natural-language question."""
    tokens = tokenize(question)
    words = [t.lower for t in tokens if t.is_word]
    if not words:
        return QuestionClassification(EntityType.UNKNOWN, "empty")

    joined = " ".join(words)
    first = words[0]

    # -- leading interrogative rules (most specific first) -----------------
    if first in ("who", "whom", "whose"):
        return QuestionClassification(EntityType.PERSON, "who")
    if first == "where" or " where " in f" {joined} ":
        return QuestionClassification(EntityType.LOCATION, "where")
    if first == "when":
        return QuestionClassification(EntityType.DATE, "when")
    if joined.startswith("how many"):
        return QuestionClassification(EntityType.NUMBER, "how-many")
    if joined.startswith("how much"):
        if any(w in words for w in ("cost", "pay", "worth", "price")):
            return QuestionClassification(EntityType.MONEY, "how-much-money")
        return QuestionClassification(EntityType.NUMBER, "how-much")
    if joined.startswith(("how far", "how tall", "how high", "how deep", "how long is")):
        return QuestionClassification(EntityType.DISTANCE, "how-far")
    if joined.startswith("how long"):
        return QuestionClassification(EntityType.DURATION, "how-long")
    if joined.startswith("how old"):
        return QuestionClassification(EntityType.NUMBER, "how-old")

    # -- "what/which (is the) <head noun>" rules -------------------------------
    if first in ("what", "which", "name"):
        for w in words[1:6]:
            if w in HEAD_NOUN_TYPES:
                return QuestionClassification(HEAD_NOUN_TYPES[w], f"head:{w}")
        # "What is the name of the ... disease ..." — scan the whole question
        # for a typed head noun before giving up.
        for w in words[6:]:
            if w in HEAD_NOUN_TYPES:
                return QuestionClassification(HEAD_NOUN_TYPES[w], f"head-late:{w}")
        # Bare "What is X?" -> definition question.
        if len(words) >= 2 and words[1] in ("is", "are", "was", "were"):
            content = [w for w in words[2:] if not is_stopword(w)]
            if content:
                return QuestionClassification(EntityType.DEFINITION, "what-is")
        return QuestionClassification(EntityType.UNKNOWN, "what-unknown")

    # -- fallback: head noun anywhere -------------------------------------------
    for w in words:
        if w in HEAD_NOUN_TYPES:
            return QuestionClassification(HEAD_NOUN_TYPES[w], f"fallback:{w}")
    return QuestionClassification(EntityType.UNKNOWN, "fallback")
