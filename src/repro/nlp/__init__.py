"""Light NLP substrate: tokenization, stemming, entities, question analysis.

Functional replacements for the Falcon NLP stack, with the same data flow
(question -> answer type + keywords; text -> typed entity spans) and a
comparable cost profile.  See DESIGN.md §2 for the substitution rationale.
"""

from .answer_types import HEAD_NOUN_TYPES, QuestionClassification, classify_question
from .entities import Entity, EntityRecognizer, EntityType, Gazetteer
from .keywords import Keyword, select_keywords
from .porter import stem
from .stemming import SHARED_STEM_CACHE, StemCache, cached_stem
from .stopwords import STOPWORDS, is_stopword
from .tokenizer import Token, is_capitalized, is_number_token, sentences, tokenize
from .vocabulary import MISSING_ID, SHARED_VOCABULARY, Vocabulary

__all__ = [
    "Entity",
    "EntityRecognizer",
    "EntityType",
    "Gazetteer",
    "HEAD_NOUN_TYPES",
    "Keyword",
    "MISSING_ID",
    "QuestionClassification",
    "SHARED_STEM_CACHE",
    "SHARED_VOCABULARY",
    "STOPWORDS",
    "StemCache",
    "Token",
    "Vocabulary",
    "cached_stem",
    "classify_question",
    "is_capitalized",
    "is_number_token",
    "is_stopword",
    "select_keywords",
    "sentences",
    "stem",
    "tokenize",
]
