"""TREC-style question set generation.

Every planted fact yields one question through the relation's question
template, so each generated question has a known ground-truth answer that
the Q/A pipeline can be scored against — the reproduction's analogue of
the TREC-8/9 question sets the paper samples from (Section 6).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from ..nlp.entities import EntityType
from .generator import Corpus
from .knowledge import ANSWER_IS_SUBJECT, TEMPLATES, Fact

__all__ = ["TrecQuestion", "generate_questions", "PAPER_EXAMPLE_QUESTIONS"]


@dataclass(frozen=True, slots=True)
class TrecQuestion:
    """A generated factual question with ground truth."""

    qid: int
    text: str
    fact: Fact
    expected_answer: str
    answer_type: EntityType


#: The four example questions of Table 1, for the quickstart demo.
PAPER_EXAMPLE_QUESTIONS = [
    "What is the name of the rare neurological disease with symptoms such"
    " as involuntary movements?",
    "Where is the actress Marion Davies buried?",
    "Where is the Taj Mahal?",
    "What is the nationality of Pope John Paul II?",
]


def generate_questions(
    corpus: Corpus,
    max_questions: int | None = None,
    seed: int = 0,
    relations: t.Collection[str] | None = None,
) -> list[TrecQuestion]:
    """Build the question set for ``corpus``.

    Parameters
    ----------
    corpus:
        The generated corpus (provides the fact inventory).
    max_questions:
        Optional cap; a random but seed-stable subsample is taken.
    relations:
        Restrict to specific relations (e.g. only "located_in").
    """
    questions: list[TrecQuestion] = []
    seen_keys: set[tuple[str, str]] = set()
    qid = 0
    for fact in corpus.knowledge.facts:
        if relations is not None and fact.relation not in relations:
            continue
        if fact.key() in seen_keys:
            continue
        seen_keys.add(fact.key())
        _stmt, template = TEMPLATES[fact.relation]
        text = template.format(subject=fact.subject, value=fact.value)
        answer = (
            fact.subject if fact.relation in ANSWER_IS_SUBJECT else fact.value
        )
        questions.append(
            TrecQuestion(
                qid=qid,
                text=text,
                fact=fact,
                expected_answer=answer,
                answer_type=fact.answer_type,
            )
        )
        qid += 1

    if max_questions is not None and len(questions) > max_questions:
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(questions), size=max_questions, replace=False)
        questions = [questions[i] for i in sorted(idx)]
    return questions
