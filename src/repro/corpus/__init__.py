"""Synthetic TREC-like corpus substrate.

Generates a reproducible document collection with planted facts, Zipfian
running text, topic-biased sub-collections, and a matched question set —
the stand-in for the TREC-9 collection and question sets (DESIGN.md §2).
"""

from .generator import (
    Corpus,
    CorpusConfig,
    Document,
    SubCollection,
    generate_corpus,
)
from .io import load_corpus, save_corpus
from .knowledge import (
    ANSWER_IS_SUBJECT,
    TEMPLATES,
    EntityRecord,
    Fact,
    KnowledgeBase,
    build_knowledge_base,
)
from .questions import PAPER_EXAMPLE_QUESTIONS, TrecQuestion, generate_questions
from .zipf import ZipfSampler, make_vocabulary

__all__ = [
    "ANSWER_IS_SUBJECT",
    "Corpus",
    "CorpusConfig",
    "Document",
    "EntityRecord",
    "Fact",
    "KnowledgeBase",
    "PAPER_EXAMPLE_QUESTIONS",
    "SubCollection",
    "TEMPLATES",
    "TrecQuestion",
    "ZipfSampler",
    "build_knowledge_base",
    "generate_corpus",
    "generate_questions",
    "load_corpus",
    "make_vocabulary",
    "save_corpus",
]
