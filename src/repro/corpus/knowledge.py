"""Entity knowledge base: the ground truth behind the synthetic corpus.

The corpus generator plants *facts* about generated entities into document
text; the question generator asks about the same facts; the entity
recognizer's gazetteer is populated from the same inventory.  This mirrors
the real-world situation where Falcon's NER lexicon covers the TREC
collection's entities — and it gives every generated question a verifiable
ground-truth answer, so the reproduction's Q/A pipeline can be tested
end-to-end for correctness, not just timing.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from ..nlp.entities import EntityType, Gazetteer

__all__ = ["Fact", "EntityRecord", "KnowledgeBase", "build_knowledge_base"]

_FIRST_SYLL = [
    "Al", "Ber", "Car", "Dan", "El", "Fran", "Gor", "Hel", "Ir", "Jor",
    "Kar", "Lu", "Mar", "Nor", "Or", "Pet", "Quin", "Ros", "Sam", "Tor",
    "Ul", "Vic", "Wen", "Xan", "Yor", "Zel",
]
_SECOND_SYLL = [
    "an", "bert", "den", "dra", "eth", "gar", "ia", "ion", "la", "lan",
    "mer", "mon", "na", "nor", "ra", "rik", "sa", "son", "ta", "tin",
    "ton", "vak", "vin", "wyn",
]
_PLACE_SYLL = [
    "Arb", "Bel", "Cor", "Dor", "Est", "Fal", "Gol", "Hav", "Ist", "Jun",
    "Kel", "Lor", "Mont", "Nar", "Ost", "Pol", "Quor", "Riv", "Sol", "Tarn",
    "Umb", "Vel", "Wes", "Yal", "Zor",
]
_PLACE_END = [
    "burg", "dale", "ford", "gard", "ham", "holm", "land", "mont", "mouth",
    "port", "shire", "stad", "ton", "vale", "ville", "wick",
]
_ORG_WORDS = [
    "Industries", "Systems", "Laboratories", "Institute", "University",
    "Corporation", "Foundation", "Group", "Consortium", "Agency",
]
_DISEASE_END = [
    "itis", "osis", "emia", "pathy", "oma", "algia",
]
_PRODUCT_WORDS = [
    "Engine", "Reactor", "Lens", "Turbine", "Battery", "Compass",
    "Telescope", "Processor", "Valve", "Loom",
]
_PROFESSIONS = [
    "inventor", "explorer", "composer", "painter", "scientist", "author",
    "president", "actress", "actor", "leader",
]
_NATION_SUFFIX = ["ian", "ese", "ish", "an", "ite"]


@dataclass(frozen=True, slots=True)
class Fact:
    """A (subject, relation, object) triple with typed answer."""

    subject: str
    relation: str
    value: str
    answer_type: EntityType

    def key(self) -> tuple[str, str]:
        return (self.subject, self.relation)


@dataclass(slots=True)
class EntityRecord:
    """One knowledge-base entity with its facts."""

    name: str
    type: EntityType
    facts: list[Fact] = field(default_factory=list)


class KnowledgeBase:
    """Inventory of generated entities, their facts, and sentence templates."""

    def __init__(self) -> None:
        self.entities: dict[str, EntityRecord] = {}
        self.facts: list[Fact] = []
        self.nationalities: list[str] = []

    # -- construction -----------------------------------------------------------
    def add_entity(self, record: EntityRecord) -> None:
        if record.name in self.entities:
            raise ValueError(f"duplicate entity {record.name!r}")
        self.entities[record.name] = record
        self.facts.extend(record.facts)

    # -- views ----------------------------------------------------------------
    def gazetteer(self) -> Gazetteer:
        """Build the recognizer gazetteer covering every KB entity and
        every fact value that is itself a named thing."""
        g = Gazetteer()
        for rec in self.entities.values():
            g.add(rec.name, rec.type)
        for fact in self.facts:
            if fact.answer_type in (
                EntityType.PERSON,
                EntityType.LOCATION,
                EntityType.ORGANIZATION,
                EntityType.DISEASE,
                EntityType.PRODUCT,
                EntityType.NATIONALITY,
            ):
                if fact.value not in self.entities:
                    g.add(fact.value, fact.answer_type)
        return g

    def by_type(self, etype: EntityType) -> list[EntityRecord]:
        return [r for r in self.entities.values() if r.type is etype]

    def __len__(self) -> int:
        return len(self.entities)


# -- fact sentence/question templates, keyed by relation ----------------------
#: relation -> (statement template, question template).  Question templates
#: reference only the fact fields that are *given*; the remaining field is
#: the answer (see ANSWER_IS_SUBJECT below).
TEMPLATES: dict[str, tuple[str, str]] = {
    "located_in": (
        "The famous {subject} is located in {value} and attracts visitors.",
        "Where is the {subject}?",
    ),
    "born_in": (
        "{subject} was born in the town of {value} many years ago.",
        "Where was {subject} born?",
    ),
    "birth_year": (
        "{subject} was born in the year {value} according to records.",
        "When was {subject} born?",
    ),
    "nationality": (
        "The {value} {profession} {subject} became famous around the world.",
        "What is the nationality of {subject}?",
    ),
    "invented": (
        "{subject} invented the {value} after years of careful research.",
        "What did {subject} invent?",
    ),
    "inventor_of": (
        "The {subject} was invented by {value} after years of research.",
        "Who invented the {subject}?",
    ),
    "buried_in": (
        "{subject} was buried in {value} following a private ceremony.",
        "Where is {subject} buried?",
    ),
    "capital_of": (
        "The city of {subject} serves as the capital of {value}.",
        "Which country has {subject} as its capital?",
    ),
    "population": (
        "The city of {subject} has a population of about {value} people.",
        "How many people live in {subject}?",
    ),
    "founded_in": (
        "{subject} was founded in {value} by a group of researchers.",
        "When was {subject} founded?",
    ),
    "headquartered_in": (
        "{subject} is headquartered in {value} near the central district.",
        "Where is {subject} headquartered?",
    ),
    "causes_symptom": (
        "Patients suffering from {subject} often show {value} among other symptoms.",
        "What disease causes {value}?",
    ),
    "treated_by": (
        "Doctors report that {subject} can be treated with {value} therapy.",
        "How is {subject} treated?",
    ),
    "led_by": (
        "{subject} was led by {value} during its most successful years.",
        "Who led {subject}?",
    ),
    "height_meters": (
        "The {subject} rises {value} meters above the surrounding plain.",
        "How tall is the {subject}?",
    ),
}

#: Relations whose generated question gives the value and asks for the
#: subject (e.g. "What disease causes <symptom>?" -> the disease).
ANSWER_IS_SUBJECT: frozenset[str] = frozenset({"causes_symptom"})


def _person_name(rng: np.random.Generator) -> str:
    first = rng.choice(_FIRST_SYLL) + rng.choice(_SECOND_SYLL)
    last = rng.choice(_FIRST_SYLL) + rng.choice(_SECOND_SYLL)
    return f"{first} {last}"


def _place_name(rng: np.random.Generator) -> str:
    return rng.choice(_PLACE_SYLL) + rng.choice(_PLACE_END).lower()


def _org_name(rng: np.random.Generator) -> str:
    return f"{_place_name(rng)} {rng.choice(_ORG_WORDS)}"


def _disease_name(rng: np.random.Generator) -> str:
    stem = rng.choice(_PLACE_SYLL).lower() + rng.choice(["br", "t", "n", "m"])
    return stem.capitalize() + rng.choice(_DISEASE_END)


def _product_name(rng: np.random.Generator) -> str:
    return f"{_place_name(rng)} {rng.choice(_PRODUCT_WORDS)}"


def _nationality(rng: np.random.Generator, country: str) -> str:
    base = country.split()[0]
    for end in ("burg", "land", "ton", "ville", "stad"):
        if base.endswith(end):
            base = base[: -len(end)]
            break
    return (base + str(rng.choice(_NATION_SUFFIX))).capitalize()


def build_knowledge_base(
    n_persons: int = 60,
    n_places: int = 50,
    n_orgs: int = 25,
    n_diseases: int = 15,
    n_products: int = 25,
    seed: int = 7,
) -> KnowledgeBase:
    """Generate a reproducible knowledge base of entities and facts."""
    rng = np.random.default_rng(seed)
    kb = KnowledgeBase()
    used_names: set[str] = set()

    def fresh(maker: t.Callable[[np.random.Generator], str]) -> str:
        for _ in range(1000):
            name = maker(rng)
            if name not in used_names:
                used_names.add(name)
                return name
        raise RuntimeError("name space exhausted")  # pragma: no cover

    countries = [fresh(_place_name) for _ in range(max(5, n_places // 5))]
    for c in countries:
        rec = EntityRecord(c, EntityType.LOCATION)
        kb.add_entity(rec)
    nationalities = []
    for c in countries:
        nat = _nationality(rng, c)
        nationalities.append(nat)
    kb.nationalities = nationalities

    cities = []
    for _ in range(n_places):
        name = fresh(_place_name)
        country = str(rng.choice(countries))
        rec = EntityRecord(name, EntityType.LOCATION)
        rec.facts.append(
            Fact(name, "population", f"{int(rng.integers(20, 900)) * 1000}",
                 EntityType.NUMBER)
        )
        if rng.random() < 0.3:
            rec.facts.append(Fact(name, "capital_of", country, EntityType.LOCATION))
        kb.add_entity(rec)
        cities.append(name)

    monuments = []
    for _ in range(max(5, n_places // 3)):
        name = fresh(_place_name) + " " + str(
            rng.choice(["Tower", "Temple", "Bridge", "Cathedral", "Palace"])
        )
        rec = EntityRecord(name, EntityType.LOCATION)
        rec.facts.append(
            Fact(name, "located_in", str(rng.choice(cities)), EntityType.LOCATION)
        )
        rec.facts.append(
            Fact(name, "height_meters", str(int(rng.integers(30, 400))),
                 EntityType.DISTANCE)
        )
        kb.add_entity(rec)
        monuments.append(name)

    products = [fresh(_product_name) for _ in range(n_products)]

    for i in range(n_persons):
        name = fresh(_person_name)
        rec = EntityRecord(name, EntityType.PERSON)
        profession = str(rng.choice(_PROFESSIONS))
        rec.facts.append(
            Fact(name, "born_in", str(rng.choice(cities)), EntityType.LOCATION)
        )
        rec.facts.append(
            Fact(name, "birth_year", str(int(rng.integers(1700, 1980))),
                 EntityType.DATE)
        )
        rec.facts.append(
            Fact(name, "nationality", str(rng.choice(nationalities)),
                 EntityType.NATIONALITY)
        )
        if i < len(products):
            rec.facts.append(
                Fact(name, "invented", products[i], EntityType.PRODUCT)
            )
            rec.facts.append(
                Fact(products[i], "inventor_of", name, EntityType.PERSON)
            )
        if rng.random() < 0.5:
            rec.facts.append(
                Fact(name, "buried_in", str(rng.choice(cities)),
                     EntityType.LOCATION)
            )
        kb.add_entity(rec)

    persons = kb.by_type(EntityType.PERSON)
    for _ in range(n_orgs):
        name = fresh(_org_name)
        rec = EntityRecord(name, EntityType.ORGANIZATION)
        rec.facts.append(
            Fact(name, "founded_in", str(int(rng.integers(1800, 1995))),
                 EntityType.DATE)
        )
        # An organization named "<Place> Institute" must not be placed in
        # <Place> — the generated question would contain its own answer.
        hq_options = [c for c in cities if c not in name]
        rec.facts.append(
            Fact(name, "headquartered_in", str(rng.choice(hq_options or cities)),
                 EntityType.LOCATION)
        )
        rec.facts.append(
            Fact(name, "led_by", persons[int(rng.integers(0, len(persons)))].name,
                 EntityType.PERSON)
        )
        kb.add_entity(rec)

    symptoms = [
        "involuntary movements", "severe headaches", "muscle weakness",
        "chronic fatigue", "blurred vision", "persistent fever",
        "joint swelling", "memory loss",
    ]
    for _ in range(n_diseases):
        name = fresh(_disease_name)
        rec = EntityRecord(name, EntityType.DISEASE)
        rec.facts.append(
            Fact(name, "causes_symptom", str(rng.choice(symptoms)),
                 EntityType.DISEASE)
        )
        kb.add_entity(rec)

    # Register products as entities too (they appear in questions).
    for p in products:
        if p not in kb.entities:
            kb.add_entity(EntityRecord(p, EntityType.PRODUCT))

    return kb
