"""Corpus persistence: save/load the generated collection as JSON.

Lets a study pin the *exact* corpus (not just the seed) alongside its
results, and lets non-Python tooling inspect the documents.  Gzip is used
when the filename ends in ``.gz``.
"""

from __future__ import annotations

import gzip
import json
import pathlib
import typing as t

from ..nlp.entities import EntityType
from .generator import Corpus, CorpusConfig, Document, SubCollection
from .knowledge import EntityRecord, Fact, KnowledgeBase

__all__ = ["save_corpus", "load_corpus"]

_FORMAT_VERSION = 1


def _open(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _fact_to_dict(fact: Fact) -> dict:
    return {
        "subject": fact.subject,
        "relation": fact.relation,
        "value": fact.value,
        "answer_type": fact.answer_type.value,
    }


def _fact_from_dict(d: dict) -> Fact:
    return Fact(
        subject=d["subject"],
        relation=d["relation"],
        value=d["value"],
        answer_type=EntityType(d["answer_type"]),
    )


def save_corpus(corpus: Corpus, path: str | pathlib.Path) -> None:
    """Serialize ``corpus`` (documents, knowledge base, config) to JSON."""
    p = pathlib.Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "n_collections": corpus.config.n_collections,
            "docs_per_collection": corpus.config.docs_per_collection,
            "paragraphs_per_doc": list(corpus.config.paragraphs_per_doc),
            "sentences_per_paragraph": list(corpus.config.sentences_per_paragraph),
            "words_per_sentence": list(corpus.config.words_per_sentence),
            "vocab_size": corpus.config.vocab_size,
            "zipf_exponent": corpus.config.zipf_exponent,
            "fact_replication": list(corpus.config.fact_replication),
            "distractor_rate": corpus.config.distractor_rate,
            "seed": corpus.config.seed,
        },
        "vocabulary": corpus.vocabulary,
        "knowledge": {
            "nationalities": corpus.knowledge.nationalities,
            "entities": [
                {
                    "name": rec.name,
                    "type": rec.type.value,
                    "facts": [_fact_to_dict(f) for f in rec.facts],
                }
                for rec in corpus.knowledge.entities.values()
            ],
        },
        "collections": [
            {
                "collection_id": coll.collection_id,
                "documents": [
                    {
                        "doc_id": doc.doc_id,
                        "title": doc.title,
                        "text": doc.text,
                        "planted": [_fact_to_dict(f) for f in doc.planted],
                    }
                    for doc in coll.documents
                ],
            }
            for coll in corpus.collections
        ],
    }
    with _open(p, "w") as fh:
        json.dump(payload, fh)


def load_corpus(path: str | pathlib.Path) -> Corpus:
    """Load a corpus previously written by :func:`save_corpus`."""
    p = pathlib.Path(path)
    with _open(p, "r") as fh:
        payload = json.load(fh)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported corpus format version: {version!r}")

    cfg = payload["config"]
    config = CorpusConfig(
        n_collections=cfg["n_collections"],
        docs_per_collection=cfg["docs_per_collection"],
        paragraphs_per_doc=tuple(cfg["paragraphs_per_doc"]),
        sentences_per_paragraph=tuple(cfg["sentences_per_paragraph"]),
        words_per_sentence=tuple(cfg["words_per_sentence"]),
        vocab_size=cfg["vocab_size"],
        zipf_exponent=cfg["zipf_exponent"],
        fact_replication=tuple(cfg["fact_replication"]),
        distractor_rate=cfg["distractor_rate"],
        seed=cfg["seed"],
    )

    kb = KnowledgeBase()
    for ent in payload["knowledge"]["entities"]:
        record = EntityRecord(ent["name"], EntityType(ent["type"]))
        record.facts.extend(_fact_from_dict(f) for f in ent["facts"])
        kb.add_entity(record)
    kb.nationalities = list(payload["knowledge"]["nationalities"])

    collections = []
    for coll in payload["collections"]:
        docs = [
            Document(
                doc_id=d["doc_id"],
                collection_id=coll["collection_id"],
                title=d["title"],
                text=d["text"],
                planted=[_fact_from_dict(f) for f in d["planted"]],
            )
            for d in coll["documents"]
        ]
        collections.append(SubCollection(coll["collection_id"], docs))

    return Corpus(
        config=config,
        knowledge=kb,
        vocabulary=list(payload["vocabulary"]),
        collections=collections,
    )
