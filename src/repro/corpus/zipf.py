"""Zipfian vocabulary generation and sampling.

Natural-language collections have Zipf-distributed word frequencies; the
paper's PR-granularity variance ("the PR sub-task granularities vary
drastically based on the frequencies of the keywords in the given
sub-collection", Section 6.2) is a direct consequence.  The synthetic
corpus therefore samples its running text from a Zipf distribution over a
generated pseudo-word vocabulary, with per-sub-collection *topic bias* so
that document frequencies differ across sub-collections the way news topics
do.
"""

from __future__ import annotations

import typing as t

import numpy as np

__all__ = ["make_vocabulary", "ZipfSampler"]

_ONSETS = [
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sh", "sl", "st",
    "t", "th", "tr", "v", "w",
]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou"]
_CODAS = ["", "b", "d", "g", "k", "l", "m", "n", "nd", "nt", "p", "r", "s", "st", "t"]


def _pseudo_word(rng: np.random.Generator, n_syllables: int) -> str:
    parts = []
    for _ in range(n_syllables):
        parts.append(rng.choice(_ONSETS))
        parts.append(rng.choice(_NUCLEI))
    parts.append(rng.choice(_CODAS))
    return "".join(parts)


def make_vocabulary(size: int, seed: int = 0) -> list[str]:
    """Generate ``size`` distinct pronounceable pseudo-words.

    Shorter words are assigned to lower (more frequent) ranks, mimicking
    the length/frequency anticorrelation of natural language — which also
    makes the keyword-selection heuristic ("longer word = rarer") sound on
    this corpus.
    """
    rng = np.random.default_rng(seed)
    words: list[str] = []
    seen: set[str] = set()
    # Frequent strata get 1-2 syllables, rare strata up to 4.
    while len(words) < size:
        frac = len(words) / size
        n_syll = 1 + int(frac * 3) + int(rng.integers(0, 2))
        w = _pseudo_word(rng, max(1, min(4, n_syll)))
        if w not in seen and len(w) >= 2:
            seen.add(w)
            words.append(w)
    return words


class ZipfSampler:
    """Samples word indices from a (possibly topic-biased) Zipf law.

    Parameters
    ----------
    vocab_size:
        Number of word types.
    exponent:
        Zipf exponent ``s`` (≈1 for natural text).
    topic_shift:
        Optional permutation bias: a value in [0, 1) rotating a fraction
        of the mid-frequency vocabulary, so two samplers with different
    shifts share function words but differ in topical vocabulary.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(
        self,
        vocab_size: int,
        exponent: float = 1.05,
        topic_shift: float = 0.0,
        seed: int = 0,
    ) -> None:
        if vocab_size < 10:
            raise ValueError("vocabulary too small")
        if not 0.0 <= topic_shift < 1.0:
            raise ValueError("topic_shift must be in [0, 1)")
        self.vocab_size = vocab_size
        self.exponent = exponent
        self.rng = np.random.default_rng(seed)

        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        weights = ranks**-exponent
        probs = weights / weights.sum()

        # Topic bias: rotate the tail (everything beyond the top 5 %) by a
        # shift-dependent offset so topical words swap frequency strata.
        order = np.arange(vocab_size)
        if topic_shift > 0.0:
            head = max(10, vocab_size // 20)
            tail = order[head:]
            offset = int(topic_shift * len(tail))
            order = np.concatenate([order[:head], np.roll(tail, offset)])
        self._word_for_slot = order
        self._probs = probs
        self._cum = np.cumsum(probs)

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` word indices (vectorized inverse-CDF sampling)."""
        u = self.rng.random(n)
        slots = np.searchsorted(self._cum, u, side="right")
        return self._word_for_slot[np.minimum(slots, self.vocab_size - 1)]

    def expected_frequency(self, word_index: int) -> float:
        """Probability of ``word_index`` under this sampler's distribution."""
        slot = int(np.nonzero(self._word_for_slot == word_index)[0][0])
        return float(self._probs[slot])
