"""Synthetic TREC-like document collection generator.

Replaces the 3 GB TREC-9 collection with a generated corpus that preserves
the statistics the paper's results depend on:

* **Zipfian vocabulary** with per-sub-collection topic bias, so keyword
  document frequencies vary across the 8 sub-collections (the source of
  the paper's uneven PR sub-task granularity, Section 6.2);
* **planted facts** from the knowledge base, each replicated into a
  configurable number of documents, giving every generated question a
  ground-truth answer somewhere in the text;
* **distractor entities** sprinkled into running text, so answer
  processing has to discriminate real candidates (cost and accuracy both
  become non-trivial).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from ..nlp.entities import EntityType
from .knowledge import TEMPLATES, Fact, KnowledgeBase, build_knowledge_base
from .zipf import ZipfSampler, make_vocabulary

__all__ = ["CorpusConfig", "Document", "SubCollection", "Corpus", "generate_corpus"]


@dataclass(frozen=True, slots=True)
class CorpusConfig:
    """Knobs for corpus generation (defaults give a laptop-scale corpus)."""

    n_collections: int = 8
    docs_per_collection: int = 60
    paragraphs_per_doc: tuple[int, int] = (3, 8)
    sentences_per_paragraph: tuple[int, int] = (2, 5)
    words_per_sentence: tuple[int, int] = (8, 20)
    vocab_size: int = 4000
    zipf_exponent: float = 1.05
    #: Each fact is planted into this many randomly chosen documents.
    fact_replication: tuple[int, int] = (1, 3)
    #: Probability that a running-text sentence mentions a random entity.
    distractor_rate: float = 0.15
    seed: int = 42

    def validate(self) -> None:
        if self.n_collections < 1:
            raise ValueError("need at least one sub-collection")
        if self.docs_per_collection < 1:
            raise ValueError("need at least one document per sub-collection")
        if self.vocab_size < 100:
            raise ValueError("vocabulary too small to be Zipf-like")


@dataclass(slots=True)
class Document:
    """One generated document."""

    doc_id: int
    collection_id: int
    title: str
    text: str
    #: Facts planted in this document (ground truth for tests).
    planted: list[Fact] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))


@dataclass(slots=True)
class SubCollection:
    """A logical shard of the corpus ("the TREC-9 collection was divided
    into 8 sub-collections, separately indexed" — Section 6)."""

    collection_id: int
    documents: list[Document]

    @property
    def size_bytes(self) -> int:
        return sum(d.size_bytes for d in self.documents)

    def __len__(self) -> int:
        return len(self.documents)


@dataclass(slots=True)
class Corpus:
    """The full generated corpus plus its generating knowledge."""

    config: CorpusConfig
    knowledge: KnowledgeBase
    vocabulary: list[str]
    collections: list[SubCollection]

    @property
    def n_documents(self) -> int:
        return sum(len(c) for c in self.collections)

    @property
    def size_bytes(self) -> int:
        return sum(c.size_bytes for c in self.collections)

    def all_documents(self) -> t.Iterator[Document]:
        for coll in self.collections:
            yield from coll.documents

    def fact_locations(self, fact: Fact) -> list[int]:
        """Doc ids where ``fact`` was planted."""
        return [
            d.doc_id
            for d in self.all_documents()
            if any(f.key() == fact.key() for f in d.planted)
        ]


def _render_sentence(
    rng: np.random.Generator,
    sampler: ZipfSampler,
    vocab: list[str],
    config: CorpusConfig,
    entity_pool: list[str],
) -> str:
    lo, hi = config.words_per_sentence
    n = int(rng.integers(lo, hi + 1))
    idx = sampler.sample(n)
    words = [vocab[i] for i in idx]
    if entity_pool and rng.random() < config.distractor_rate:
        pos = int(rng.integers(0, len(words)))
        words.insert(pos, str(rng.choice(entity_pool)))
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def _render_fact(fact: Fact, kb: KnowledgeBase, rng: np.random.Generator) -> str:
    statement, _question = TEMPLATES[fact.relation]
    profession = ""
    if "{profession}" in statement:
        profession = str(rng.choice(
            ["inventor", "explorer", "composer", "scientist", "author",
             "actress", "leader"]
        ))
    return statement.format(
        subject=fact.subject, value=fact.value, profession=profession
    )


def generate_corpus(
    config: CorpusConfig | None = None,
    knowledge: KnowledgeBase | None = None,
) -> Corpus:
    """Generate a reproducible corpus from ``config``.

    The same config always yields byte-identical text (seeded RNGs all the
    way down), which keeps simulations and benchmarks deterministic.
    """
    config = config or CorpusConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)
    kb = knowledge or build_knowledge_base(seed=config.seed + 1)
    vocab = make_vocabulary(config.vocab_size, seed=config.seed + 2)
    entity_pool = list(kb.entities.keys())

    # Assign each fact to its target documents up front.
    n_docs_total = config.n_collections * config.docs_per_collection
    placements: dict[int, list[Fact]] = {i: [] for i in range(n_docs_total)}
    lo_rep, hi_rep = config.fact_replication
    for fact in kb.facts:
        n_rep = int(rng.integers(lo_rep, hi_rep + 1))
        targets = rng.choice(n_docs_total, size=min(n_rep, n_docs_total),
                             replace=False)
        for doc_id in targets:
            placements[int(doc_id)].append(fact)

    collections: list[SubCollection] = []
    doc_id = 0
    for cid in range(config.n_collections):
        # Per-collection topic bias: shifts mid-frequency vocabulary.
        sampler = ZipfSampler(
            config.vocab_size,
            exponent=config.zipf_exponent,
            topic_shift=cid / config.n_collections,
            seed=config.seed + 100 + cid,
        )
        docs: list[Document] = []
        for _ in range(config.docs_per_collection):
            p_lo, p_hi = config.paragraphs_per_doc
            s_lo, s_hi = config.sentences_per_paragraph
            n_paragraphs = int(rng.integers(p_lo, p_hi + 1))
            fact_queue = list(placements[doc_id])
            rng.shuffle(fact_queue)  # type: ignore[arg-type]
            paragraphs: list[str] = []
            for _p in range(n_paragraphs):
                n_sent = int(rng.integers(s_lo, s_hi + 1))
                sents = [
                    _render_sentence(rng, sampler, vocab, config, entity_pool)
                    for _ in range(n_sent)
                ]
                if fact_queue:
                    fact = fact_queue.pop()
                    pos = int(rng.integers(0, len(sents) + 1))
                    sents.insert(pos, _render_fact(fact, kb, rng))
                paragraphs.append(" ".join(sents))
            # Any facts left over (more facts than paragraphs): append one
            # paragraph holding them all.
            if fact_queue:
                paragraphs.append(
                    " ".join(_render_fact(f, kb, rng) for f in fact_queue)
                )
            title_idx = sampler.sample(3)
            title = " ".join(vocab[i] for i in title_idx).title()
            docs.append(
                Document(
                    doc_id=doc_id,
                    collection_id=cid,
                    title=title,
                    text="\n\n".join(paragraphs),
                    planted=list(placements[doc_id]),
                )
            )
            doc_id += 1
        collections.append(SubCollection(cid, docs))

    return Corpus(
        config=config, knowledge=kb, vocabulary=vocab, collections=collections
    )
