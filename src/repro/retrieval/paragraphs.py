"""Paragraph segmentation.

Falcon's paragraph retrieval has "an additional post-processing phase to
extract paragraphs from documents" (Section 2.1).  Documents in the
synthetic corpus separate paragraphs with blank lines, like TREC SGML text
bodies effectively did.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

__all__ = ["Paragraph", "split_paragraphs"]


@dataclass(frozen=True, slots=True)
class Paragraph:
    """One paragraph of one document."""

    doc_id: int
    collection_id: int
    index: int  # position within the document
    text: str

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))

    @property
    def key(self) -> tuple[int, int]:
        """Globally unique (doc_id, index) identifier."""
        return (self.doc_id, self.index)


def split_paragraphs(
    doc_id: int, collection_id: int, text: str
) -> list[Paragraph]:
    """Split document ``text`` into paragraphs on blank lines."""
    out: list[Paragraph] = []
    for i, chunk in enumerate(text.split("\n\n")):
        chunk = chunk.strip()
        if chunk:
            out.append(Paragraph(doc_id, collection_id, i, chunk))
    return out
