"""Query-time prediction from term statistics (Cahoon/McKinley/Lu [7]).

The paper's related-work section notes "an interesting result obtained in
[7] is a query time evaluation heuristic based on the number of query
terms and their frequencies in the given collection.  Such information
could be used by the load balancing mechanism, but unfortunately it does
not apply to question/answering" — because the NLP modules, not
retrieval, dominate a Q/A task.

This module implements that heuristic so the claim can be *tested*:
:func:`predict_pr_cost` estimates paragraph-retrieval work from posting
statistics alone.  The accompanying experiment
(:mod:`repro.experiments.prediction_exp`) shows the estimate correlates
strongly with the PR module's actual cost but only weakly with total
question cost — quantifying exactly why the paper's dispatchers rely on
load feedback rather than a priori query-cost prediction.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..nlp.keywords import Keyword
from .collection import IndexedCorpus
from .inverted_index import CollectionIndex

__all__ = ["QueryCostEstimate", "predict_pr_cost", "predict_pr_cost_corpus"]


@dataclass(frozen=True, slots=True)
class QueryCostEstimate:
    """Predicted retrieval work for one query against one collection."""

    n_terms: int
    postings_estimate: float
    doc_bytes_estimate: float

    @property
    def work_units(self) -> float:
        """A single scalar: bytes-equivalent work (8 bytes per posting)."""
        return 8.0 * self.postings_estimate + self.doc_bytes_estimate


def predict_pr_cost(
    index: CollectionIndex,
    keywords: t.Sequence[Keyword],
    min_docs: int = 3,
) -> QueryCostEstimate:
    """Estimate PR work from term count and document frequencies.

    The heuristic of [7], adapted to Falcon's relaxation loop: each round
    scans the active terms' posting lists; the conjunction size is
    approximated by the rarest active term's document frequency; when the
    estimate falls short of ``min_docs`` the lowest-priority keyword is
    dropped and the round repeats — the same control flow the real
    retriever executes, driven by statistics only.
    """
    active = sorted(keywords, key=lambda k: k.priority)
    if not active:
        return QueryCostEstimate(0, 0.0, 0.0)
    n_docs = max(1, index.stats.n_documents)
    mean_doc_bytes = index.stats.text_bytes / n_docs

    postings = 0.0
    n_terms = sum(len(kw.stems) for kw in active)
    conjunction_docs = 0.0
    while active:
        dfs = [index.document_frequency(s) for kw in active for s in kw.stems]
        postings += float(sum(dfs))
        conjunction_docs = float(min(dfs)) if dfs else 0.0
        if conjunction_docs >= min_docs or len(active) == 1:
            break
        active = active[:-1]
    return QueryCostEstimate(
        n_terms=n_terms,
        postings_estimate=postings,
        doc_bytes_estimate=conjunction_docs * mean_doc_bytes,
    )


def predict_pr_cost_corpus(
    indexed: IndexedCorpus, keywords: t.Sequence[Keyword]
) -> float:
    """Corpus-wide predicted work units (summed over sub-collections)."""
    return sum(
        predict_pr_cost(ix, keywords).work_units for ix in indexed.indexes
    )
