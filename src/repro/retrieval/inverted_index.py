"""Stemmed inverted index over one sub-collection — packed, id-coded.

The paper indexes each of the 8 sub-collections separately ("separately
indexed using a Boolean information retrieval system built on top of
Zprise", Section 6).  :class:`CollectionIndex` is our from-scratch
equivalent: document-level postings with term frequencies, plus a
paragraph-level term layer for the paragraph-extraction post-processing
phase and the PS/AP fast paths.

Since the compact-data-plane rewrite, every term is interned to a dense
integer id through the process-wide
:data:`~repro.nlp.vocabulary.SHARED_VOCABULARY` and the index is a
handful of flat ``array`` buffers (:class:`IndexBuffers`) instead of
nested dicts:

* postings are one flat sorted doc-id array plus a parallel tf array,
  sliced per term through an offset table — sorted order is a property
  of the layout, so there is no separate sorted-postings structure;
* each paragraph's term view (:class:`ParagraphTerms`) is a window into
  collection-wide stem-id / token-span / position-order arrays, exposed
  through the same API the dict-based layer had (``tokens``,
  ``stems_at``, ``positions_of``) as lazy views;
* per-paragraph stem *sets* (the Boolean quorum filter) are sorted id
  runs in one flat array, probed by binary search.

Integer-coded flat layouts are how production engines keep per-query
work sub-linear and index bytes small (cs/0407053, arXiv:1006.5059);
here they also make the index ~10x cheaper to (de)serialize than to
rebuild (see :mod:`repro.retrieval.packing`), which is what lets
parallel experiment workers attach to a prebuilt index instead of
re-paying the build per process.

The index also exposes the *cost accounting* hooks the simulation's PR
cost model consumes: posting-list sizes and candidate-document byte counts
(paragraph retrieval is 80 % disk time — Table 3 — so bytes touched is the
natural cost driver).
"""

from __future__ import annotations

import sys
import typing as t
from array import array
from bisect import bisect_left, bisect_right
from collections.abc import Set as AbstractSet
from dataclasses import dataclass

from ..corpus.generator import Document, SubCollection
from ..nlp.stemming import SHARED_STEM_CACHE, StemCache
from ..nlp.stopwords import is_stopword
from ..nlp.tokenizer import Token, tokenize
from ..nlp.vocabulary import MISSING_ID, SHARED_VOCABULARY, Vocabulary
from .paragraphs import Paragraph, split_paragraphs

__all__ = [
    "CollectionIndex",
    "StemCache",
    "IndexBuffers",
    "IndexStats",
    "ParagraphTerms",
    "StemSetView",
]

#: Read-only empty doc-id view, returned for unknown stems.
_EMPTY_U32 = memoryview(array("I")).toreadonly()


@dataclass(slots=True)
class IndexBuffers:
    """The flat array buffers one :class:`CollectionIndex` is made of.

    This is the complete serializable state of an index apart from the
    corpus itself (documents and paragraph text are reconstructed from
    the corpus on attach).  All term ids refer to the vocabulary the
    buffers were built against; :mod:`repro.retrieval.packing` remaps
    them when attaching under a vocabulary with different ids.
    """

    #: Paragraph ``p``'s tokens live at ``[t_offsets[p], t_offsets[p+1])``
    #: in ``starts`` / ``lengths`` / ``stem_ids`` / ``order`` / ``sorted_ids``.
    t_offsets: array
    #: Character start of each token within its paragraph's text, and its
    #: length (``"H"`` — tokens are bounded far below 64 KiB).
    starts: array
    lengths: array
    #: Stem id of each token (raw-surface id for non-word tokens).
    stem_ids: array
    #: Paragraph-local token positions, sorted by (stem id, position)
    #: (``"H"`` — paragraphs are bounded far below 64 Ki tokens).
    order: array
    #: ``stem_ids[order[j]]`` — the sorted-by-id view that makes
    #: per-stem position lookup a binary search.
    sorted_ids: array
    #: Paragraph ``p``'s distinct indexed stem ids (sorted) live at
    #: ``[pset_offsets[p], pset_offsets[p+1])`` in ``pset_ids``.
    pset_offsets: array
    pset_ids: array
    #: Posting slot ``s`` covers term ``p_terms[s]`` with sorted doc ids
    #: ``p_docs[p_offsets[s]:p_offsets[s+1]]`` and parallel ``p_tfs``.
    p_terms: array
    p_offsets: array
    p_docs: array
    p_tfs: array

    def id_arrays(self) -> tuple[array, ...]:
        """The buffers holding vocabulary ids (the ones remapping touches)."""
        return (self.stem_ids, self.sorted_ids, self.pset_ids, self.p_terms)

    def nbytes(self) -> int:
        """Total size of all buffers (array headers + payload)."""
        return sum(
            sys.getsizeof(a)
            for a in (
                self.t_offsets, self.starts, self.lengths, self.stem_ids,
                self.order, self.sorted_ids, self.pset_offsets, self.pset_ids,
                self.p_terms, self.p_offsets, self.p_docs, self.p_tfs,
            )
        )


class _TermViews:
    """Read-only views over the paragraph-layer buffers, shared by every
    :class:`ParagraphTerms` of one collection."""

    __slots__ = ("starts", "lengths", "stem_ids", "order", "sorted_ids", "vocab")

    def __init__(self, buffers: IndexBuffers, vocab: Vocabulary) -> None:
        self.starts = memoryview(buffers.starts).toreadonly()
        self.lengths = memoryview(buffers.lengths).toreadonly()
        self.stem_ids = memoryview(buffers.stem_ids).toreadonly()
        self.order = memoryview(buffers.order).toreadonly()
        self.sorted_ids = memoryview(buffers.sorted_ids).toreadonly()
        self.vocab = vocab


class ParagraphTerms:
    """Precomputed term view of one paragraph (the PS/AP fast path).

    A thin window ``[lo, hi)`` into the collection's packed term buffers.
    The API mirrors the old tuple/dict-based layer — ``stems_at[i]`` is
    the Porter stem of token ``i`` for word tokens and the raw surface
    form otherwise, exactly the sequence the naive re-tokenize path
    computes — but tokens and string views are materialized lazily from
    the packed arrays.  ``tokens`` is cached once built (AP revisits
    accepted paragraphs across questions); the string-keyed views are
    compatibility/debug surfaces and are rebuilt per call.
    """

    __slots__ = ("text", "_lo", "_hi", "_views", "_tokens")

    def __init__(self, text: str, lo: int, hi: int, views: _TermViews) -> None:
        self.text = text
        self._lo = lo
        self._hi = hi
        self._views = views
        self._tokens: tuple[Token, ...] | None = None

    @property
    def vocab(self) -> Vocabulary:
        return self._views.vocab

    @property
    def n_tokens(self) -> int:
        return self._hi - self._lo

    @property
    def tokens(self) -> tuple[Token, ...]:
        """Token objects with character spans (lazy; cached)."""
        toks = self._tokens
        if toks is None:
            v, text, lo, hi = self._views, self.text, self._lo, self._hi
            toks = tuple(
                Token(text[s : s + ln], s, s + ln)
                for s, ln in zip(v.starts[lo:hi], v.lengths[lo:hi])
            )
            self._tokens = toks
        return toks

    @property
    def stems_at(self) -> tuple[str, ...]:
        """The stemmed token sequence, as strings (built per call)."""
        v = self._views
        return v.vocab.terms(v.stem_ids[self._lo : self._hi])

    @property
    def positions(self) -> dict[str, tuple[int, ...]]:
        """``{stem: sorted token positions}`` — compatibility view."""
        v = self._views
        out: dict[str, tuple[int, ...]] = {}
        lo, hi = self._lo, self._hi
        j = lo
        while j < hi:
            tid = v.sorted_ids[j]
            k = bisect_right(v.sorted_ids, tid, j, hi)
            out[v.vocab.term(tid)] = tuple(v.order[j:k])
            j = k
        return out

    def ids_at(self, i: int, length: int) -> memoryview:
        """Stem ids of tokens ``[i, i + length)`` (paragraph-local)."""
        return self._views.stem_ids[self._lo + i : self._lo + i + length]

    def positions_of_id(self, tid: int) -> tuple[int, ...]:
        """Token positions whose stem id is ``tid`` (empty if absent)."""
        v = self._views
        lo = bisect_left(v.sorted_ids, tid, self._lo, self._hi)
        hi = bisect_right(v.sorted_ids, tid, lo, self._hi)
        return tuple(v.order[lo:hi])

    def positions_of(self, stem_: str) -> tuple[int, ...]:
        """Token positions whose stem equals ``stem_`` (empty if absent)."""
        tid = self._views.vocab.lookup(stem_)
        if tid < 0:
            return ()
        return self.positions_of_id(tid)


class StemSetView(AbstractSet):
    """Immutable set-of-stems view over a sorted id run (quorum filter).

    Compares and intersects like a ``frozenset[str]`` through the
    :class:`collections.abc.Set` mixins, but stores nothing: membership
    is a vocabulary lookup plus a binary search into the collection's
    flat ``pset_ids`` buffer.
    """

    __slots__ = ("_ids", "_lo", "_hi", "_vocab")

    def __init__(
        self, ids: memoryview, lo: int, hi: int, vocab: Vocabulary
    ) -> None:
        self._ids = ids
        self._lo = lo
        self._hi = hi
        self._vocab = vocab

    @classmethod
    def _from_iterable(cls, it: t.Iterable[str]) -> frozenset:
        return frozenset(it)

    def __contains__(self, stem_: object) -> bool:
        if not isinstance(stem_, str):
            return False
        tid = self._vocab.lookup(stem_)
        j = bisect_left(self._ids, tid, self._lo, self._hi)
        return tid >= 0 and j < self._hi and self._ids[j] == tid

    def __iter__(self) -> t.Iterator[str]:
        term = self._vocab.term
        return (term(tid) for tid in self._ids[self._lo : self._hi])

    def __len__(self) -> int:
        return self._hi - self._lo


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Size statistics used by the PR cost model and the memory gauges."""

    n_documents: int
    n_paragraphs: int
    n_postings: int
    text_bytes: int
    #: Actual resident bytes of the packed index structures (buffers,
    #: lookup dicts, paragraph views) — excludes corpus text/documents.
    memory_bytes: int = 0

    @property
    def index_bytes(self) -> int:
        """Approximate on-disk index size (8 bytes per posting)."""
        return 8 * self.n_postings


def _build_buffers(
    collection: SubCollection, stem_fn: StemCache, vocab: Vocabulary
) -> IndexBuffers:
    """Tokenize, stem, and intern one sub-collection into flat buffers."""
    t_offsets = array("I", (0,))
    starts = array("I")
    lengths = array("H")
    stem_ids = array("i")
    order = array("H")
    sorted_ids = array("i")
    pset_offsets = array("I", (0,))
    pset_ids = array("i")
    #: term id -> ([doc ids], [tfs]); docs arrive in ascending id order.
    postings: dict[int, tuple[list[int], list[int]]] = {}
    intern = vocab.intern
    for doc in collection.documents:
        doc_counts: dict[int, int] = {}
        for para in split_paragraphs(doc.doc_id, collection.collection_id, doc.text):
            ids: list[int] = []
            pset: set[int] = set()
            for tok in tokenize(para.text):
                text = tok.text
                tid = intern(stem_fn(text) if tok.is_word else text)
                ids.append(tid)
                starts.append(tok.start)
                lengths.append(tok.end - tok.start)
                if not tok.is_word and not text[0].isdigit():
                    continue
                if is_stopword(text):
                    continue
                pset.add(tid)
                doc_counts[tid] = doc_counts.get(tid, 0) + 1
            stem_ids.extend(ids)
            # Stable sort by id keeps equal-id positions ascending, so a
            # stem's position run is sorted — the invariant positions_of
            # relies on.
            loc = sorted(range(len(ids)), key=ids.__getitem__)
            order.extend(loc)
            sorted_ids.extend(ids[j] for j in loc)
            pset_ids.extend(sorted(pset))
            pset_offsets.append(len(pset_ids))
            t_offsets.append(len(stem_ids))
        for tid, tf in doc_counts.items():
            slot = postings.get(tid)
            if slot is None:
                slot = postings[tid] = ([], [])
            slot[0].append(doc.doc_id)
            slot[1].append(tf)
    p_terms = array("i")
    p_offsets = array("I", (0,))
    p_docs = array("I")
    p_tfs = array("I")
    for tid, (docs, tfs) in postings.items():
        p_terms.append(tid)
        p_docs.extend(docs)
        p_tfs.extend(tfs)
        p_offsets.append(len(p_docs))
    return IndexBuffers(
        t_offsets=t_offsets, starts=starts, lengths=lengths, stem_ids=stem_ids,
        order=order, sorted_ids=sorted_ids, pset_offsets=pset_offsets,
        pset_ids=pset_ids, p_terms=p_terms, p_offsets=p_offsets,
        p_docs=p_docs, p_tfs=p_tfs,
    )


class CollectionIndex:
    """Boolean inverted index of one sub-collection (packed layout)."""

    def __init__(
        self,
        collection: SubCollection,
        stemmer: StemCache | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> None:
        self.collection_id = collection.collection_id
        self._stem = stemmer or SHARED_STEM_CACHE
        self.vocab = vocabulary or SHARED_VOCABULARY
        self._attach(collection, _build_buffers(collection, self._stem, self.vocab))

    @classmethod
    def from_buffers(
        cls,
        collection: SubCollection,
        buffers: IndexBuffers,
        stemmer: StemCache | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> CollectionIndex:
        """Attach to prebuilt buffers instead of tokenizing the collection.

        The buffers' ids must be valid in ``vocabulary`` (the caller —
        :mod:`repro.retrieval.packing` — remaps first when they are not).
        Raises :class:`ValueError` if the buffers do not fit the
        collection's document/paragraph shape.
        """
        self = cls.__new__(cls)
        self.collection_id = collection.collection_id
        self._stem = stemmer or SHARED_STEM_CACHE
        self.vocab = vocabulary or SHARED_VOCABULARY
        self._attach(collection, buffers)
        return self

    def _attach(self, collection: SubCollection, buffers: IndexBuffers) -> None:
        """Derive all runtime views and lookup tables from ``buffers``."""
        self.buffers = buffers
        # Lazily-built term-statistic sketch (repro.retrieval.selection);
        # payload attach pre-populates it when the artifact carries one.
        self._sketch = None
        self._views = _TermViews(buffers, self.vocab)
        self._pset = memoryview(buffers.pset_ids).toreadonly()
        self._p_docs = memoryview(buffers.p_docs).toreadonly()
        self._p_tfs = memoryview(buffers.p_tfs).toreadonly()
        self._p_offsets = buffers.p_offsets
        # Flat stem-id -> posting-slot table (-1 = no postings): the id
        # space is dense, so an array beats a dict by ~4x resident bytes.
        p_terms = buffers.p_terms
        slots = array("i", [-1]) * ((max(p_terms) + 1) if p_terms else 0)
        for slot, tid in enumerate(p_terms):
            slots[tid] = slot
        self._posting_slot: array = slots
        self._documents: dict[int, Document] = {}
        #: doc_id -> ((paragraph, pset lo, pset hi), ...)
        self._doc_paragraphs: dict[int, tuple[tuple[Paragraph, int, int], ...]] = {}
        self._paragraph_terms: dict[tuple[int, int], ParagraphTerms] = {}
        t_offsets = buffers.t_offsets
        pset_offsets = buffers.pset_offsets
        n_paras = len(t_offsets) - 1
        text_bytes = 0
        ordinal = 0
        for doc in collection.documents:
            self._documents[doc.doc_id] = doc
            text_bytes += doc.size_bytes
            entries: list[tuple[Paragraph, int, int]] = []
            for para in split_paragraphs(doc.doc_id, self.collection_id, doc.text):
                if ordinal >= n_paras:
                    raise ValueError(
                        "index buffers hold fewer paragraphs than the corpus"
                    )
                self._paragraph_terms[para.key] = ParagraphTerms(
                    para.text,
                    t_offsets[ordinal],
                    t_offsets[ordinal + 1],
                    self._views,
                )
                entries.append(
                    (para, pset_offsets[ordinal], pset_offsets[ordinal + 1])
                )
                ordinal += 1
            self._doc_paragraphs[doc.doc_id] = tuple(entries)
        if ordinal != n_paras:
            raise ValueError(
                f"index buffers hold {n_paras} paragraphs, corpus has {ordinal}"
            )
        self.stats = IndexStats(
            n_documents=len(self._documents),
            n_paragraphs=n_paras,
            n_postings=len(buffers.p_docs),
            text_bytes=text_bytes,
            memory_bytes=self._memory_bytes(),
        )

    def _memory_bytes(self) -> int:
        """Resident bytes of the index-owned structures (not the corpus)."""
        total = self.buffers.nbytes()
        total += sum(
            sys.getsizeof(o)
            for o in (
                self._views, self._pset, self._p_docs, self._p_tfs,
                self._posting_slot, self._documents, self._doc_paragraphs,
                self._paragraph_terms,
            )
        )
        total += sum(
            sys.getsizeof(mv)
            for mv in (
                self._views.starts, self._views.lengths, self._views.stem_ids,
                self._views.order, self._views.sorted_ids,
            )
        )
        if self._paragraph_terms:
            pt = next(iter(self._paragraph_terms.values()))
            total += len(self._paragraph_terms) * sys.getsizeof(pt)
        for entries in self._doc_paragraphs.values():
            total += sys.getsizeof(entries) + sum(
                sys.getsizeof(e) for e in entries
            )
        return total

    # -- lookups ---------------------------------------------------------------
    def _slot(self, stem_: str) -> int | None:
        tid = self.vocab.lookup(stem_)
        if tid < 0 or tid >= len(self._posting_slot):
            return None
        slot = self._posting_slot[tid]
        return slot if slot >= 0 else None

    def document_frequency(self, stem_: str) -> int:
        """Number of documents containing ``stem_``."""
        slot = self._slot(stem_)
        if slot is None:
            return 0
        off = self._p_offsets
        return off[slot + 1] - off[slot]

    def postings(self, stem_: str) -> dict[int, int]:
        """doc_id -> tf mapping for ``stem_`` (empty dict if absent).

        Built per call from the packed arrays; this is the reference /
        compatibility surface, not the hot path (which slices
        :meth:`sorted_postings` views directly).
        """
        slot = self._slot(stem_)
        if slot is None:
            return {}
        lo, hi = self._p_offsets[slot], self._p_offsets[slot + 1]
        return dict(zip(self._p_docs[lo:hi], self._p_tfs[lo:hi]))

    def sorted_postings(self, stem_: str) -> memoryview:
        """Sorted doc-id array for ``stem_`` (empty view if absent).

        The returned view is read-only — sharing the internal buffer is
        safe by construction.
        """
        slot = self._slot(stem_)
        if slot is None:
            return _EMPTY_U32
        return self._p_docs[self._p_offsets[slot] : self._p_offsets[slot + 1]]

    def posting_bytes(self, stem_: str) -> int:
        """Approximate bytes read to scan this stem's posting list."""
        return 8 * self.document_frequency(stem_)

    def document(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def doc_bytes(self, doc_id: int) -> int:
        return self._documents[doc_id].size_bytes

    def paragraph_spans(
        self, doc_id: int
    ) -> tuple[tuple[Paragraph, int, int], ...]:
        """Paragraphs of a document with their ``pset_ids`` spans.

        The packed accessor the Boolean quorum filter uses: each entry is
        ``(paragraph, lo, hi)`` where ``paragraph_stem_ids[lo:hi]`` is the
        paragraph's sorted distinct indexed stem ids.
        """
        return self._doc_paragraphs[doc_id]

    @property
    def paragraph_stem_ids(self) -> memoryview:
        """Flat sorted-run stem-id buffer behind :meth:`paragraph_spans`."""
        return self._pset

    def paragraphs_of(
        self, doc_id: int
    ) -> tuple[tuple[Paragraph, StemSetView], ...]:
        """Paragraphs of a document with their stem sets (immutable views)."""
        pset, vocab = self._pset, self.vocab
        return tuple(
            (para, StemSetView(pset, lo, hi, vocab))
            for para, lo, hi in self._doc_paragraphs[doc_id]
        )

    def paragraph_terms(self, key: tuple[int, int]) -> ParagraphTerms | None:
        """Precomputed term view for paragraph ``key`` (``(doc_id, index)``)."""
        return self._paragraph_terms.get(key)

    @property
    def doc_ids(self) -> t.KeysView[int]:
        return self._documents.keys()

    def vocabulary_size(self) -> int:
        return len(self.buffers.p_terms)

    def iter_terms(self) -> t.Iterator[tuple[str, int]]:
        """(stem, document frequency) pairs, in posting-slot order."""
        off = self._p_offsets
        term = self.vocab.term
        for slot, tid in enumerate(self.buffers.p_terms):
            yield term(tid), off[slot + 1] - off[slot]
