"""Stemmed inverted index over one sub-collection.

The paper indexes each of the 8 sub-collections separately ("separately
indexed using a Boolean information retrieval system built on top of
Zprise", Section 6).  :class:`CollectionIndex` is our from-scratch
equivalent: document-level postings with term frequencies, plus
paragraph-level stem sets for the paragraph-extraction post-processing
phase.

Beyond the postings, the index materializes a **paragraph term layer**
(:class:`ParagraphTerms`): each paragraph's token array, stemmed token
sequence, and a ``{stem: token positions}`` map, all computed once at
index-build time.  Downstream, paragraph scoring (PS) and answer
processing (AP) consult this layer instead of re-tokenizing and
re-stemming paragraph text per question — tokenization/stemming of a
paragraph happens once per corpus, not once per question per paragraph.
This mirrors the precomputed per-document structures that distributed
search engines use to keep per-query work sub-linear (cs/0407053,
arXiv:1006.5059).

The index also exposes the *cost accounting* hooks the simulation's PR
cost model consumes: posting-list sizes and candidate-document byte counts
(paragraph retrieval is 80 % disk time — Table 3 — so bytes touched is the
natural cost driver).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..corpus.generator import Document, SubCollection
from ..nlp.stemming import SHARED_STEM_CACHE, StemCache
from ..nlp.stopwords import is_stopword
from ..nlp.tokenizer import Token, tokenize
from .paragraphs import Paragraph, split_paragraphs

__all__ = ["CollectionIndex", "StemCache", "IndexStats", "ParagraphTerms"]


#: Shared process-wide stem cache (stemming is pure).  Kept under its
#: historical name for backward compatibility; the canonical home is
#: :data:`repro.nlp.stemming.SHARED_STEM_CACHE`.
_GLOBAL_STEMS = SHARED_STEM_CACHE


@dataclass(frozen=True, slots=True)
class ParagraphTerms:
    """Precomputed term view of one paragraph (the PS/AP fast path).

    ``stems_at[i]`` is the Porter stem of token ``i`` for word tokens and
    the raw surface form otherwise — exactly the sequence the naive
    re-tokenize path computes.  ``positions`` maps every distinct entry of
    ``stems_at`` to its (sorted) token positions, so locating a keyword's
    occurrences is a dictionary lookup instead of a scan.
    """

    tokens: tuple[Token, ...]
    stems_at: tuple[str, ...]
    positions: dict[str, tuple[int, ...]]

    def positions_of(self, stem_: str) -> tuple[int, ...]:
        """Token positions whose stem equals ``stem_`` (empty if absent)."""
        return self.positions.get(stem_, ())


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Size statistics used by the PR cost model."""

    n_documents: int
    n_paragraphs: int
    n_postings: int
    text_bytes: int

    @property
    def index_bytes(self) -> int:
        """Approximate on-disk index size (8 bytes per posting)."""
        return 8 * self.n_postings


class CollectionIndex:
    """Boolean inverted index of one sub-collection."""

    def __init__(
        self,
        collection: SubCollection,
        stemmer: StemCache | None = None,
    ) -> None:
        self.collection_id = collection.collection_id
        self._stem = stemmer or _GLOBAL_STEMS
        #: stem -> {doc_id: term frequency}
        self._postings: dict[str, dict[int, int]] = {}
        #: stem -> sorted doc_id array (for galloping intersection).
        self._sorted_postings: dict[str, list[int]] = {}
        self._documents: dict[int, Document] = {}
        #: doc_id -> list of (paragraph, frozenset of stems)
        self._doc_paragraphs: dict[int, list[tuple[Paragraph, frozenset[str]]]] = {}
        #: (doc_id, paragraph index) -> precomputed term view.
        self._paragraph_terms: dict[tuple[int, int], ParagraphTerms] = {}
        n_paragraphs = 0
        text_bytes = 0
        stem_fn = self._stem
        for doc in collection.documents:
            self._documents[doc.doc_id] = doc
            text_bytes += doc.size_bytes
            paragraphs = split_paragraphs(doc.doc_id, self.collection_id, doc.text)
            n_paragraphs += len(paragraphs)
            entries: list[tuple[Paragraph, frozenset[str]]] = []
            doc_counts: dict[str, int] = {}
            for para in paragraphs:
                tokens = tuple(tokenize(para.text))
                stems_at = tuple(
                    stem_fn(tok.text) if tok.is_word else tok.text
                    for tok in tokens
                )
                pos_lists: dict[str, list[int]] = {}
                stems: set[str] = set()
                for i, tok in enumerate(tokens):
                    s = stems_at[i]
                    pos_lists.setdefault(s, []).append(i)
                    if not tok.is_word and not tok.text[0].isdigit():
                        continue
                    if is_stopword(tok.text):
                        continue
                    stems.add(s)
                    doc_counts[s] = doc_counts.get(s, 0) + 1
                self._paragraph_terms[para.key] = ParagraphTerms(
                    tokens=tokens,
                    stems_at=stems_at,
                    positions={s: tuple(p) for s, p in pos_lists.items()},
                )
                entries.append((para, frozenset(stems)))
            self._doc_paragraphs[doc.doc_id] = entries
            for s, tf in doc_counts.items():
                self._postings.setdefault(s, {})[doc.doc_id] = tf
        for s, plist in self._postings.items():
            self._sorted_postings[s] = sorted(plist)
        self.stats = IndexStats(
            n_documents=len(self._documents),
            n_paragraphs=n_paragraphs,
            n_postings=sum(len(p) for p in self._postings.values()),
            text_bytes=text_bytes,
        )

    # -- lookups ---------------------------------------------------------------
    def document_frequency(self, stem_: str) -> int:
        """Number of documents containing ``stem_``."""
        return len(self._postings.get(stem_, ()))

    def postings(self, stem_: str) -> dict[int, int]:
        """doc_id -> tf mapping for ``stem_`` (empty dict if absent)."""
        return self._postings.get(stem_, {})

    def sorted_postings(self, stem_: str) -> list[int]:
        """Sorted doc_id array for ``stem_`` (empty list if absent).

        Callers must not mutate the returned list.
        """
        return self._sorted_postings.get(stem_, [])

    def posting_bytes(self, stem_: str) -> int:
        """Approximate bytes read to scan this stem's posting list."""
        return 8 * self.document_frequency(stem_)

    def document(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def doc_bytes(self, doc_id: int) -> int:
        return self._documents[doc_id].size_bytes

    def paragraphs_of(self, doc_id: int) -> list[tuple[Paragraph, frozenset[str]]]:
        """Paragraphs of a document with their stem sets."""
        return self._doc_paragraphs[doc_id]

    def paragraph_terms(self, key: tuple[int, int]) -> ParagraphTerms | None:
        """Precomputed term view for paragraph ``key`` (``(doc_id, index)``)."""
        return self._paragraph_terms.get(key)

    @property
    def doc_ids(self) -> t.KeysView[int]:
        return self._documents.keys()

    def vocabulary_size(self) -> int:
        return len(self._postings)
