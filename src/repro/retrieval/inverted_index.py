"""Stemmed inverted index over one sub-collection.

The paper indexes each of the 8 sub-collections separately ("separately
indexed using a Boolean information retrieval system built on top of
Zprise", Section 6).  :class:`CollectionIndex` is our from-scratch
equivalent: document-level postings with term frequencies, plus
paragraph-level stem sets for the paragraph-extraction post-processing
phase.

The index also exposes the *cost accounting* hooks the simulation's PR
cost model consumes: posting-list sizes and candidate-document byte counts
(paragraph retrieval is 80 % disk time — Table 3 — so bytes touched is the
natural cost driver).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..corpus.generator import Document, SubCollection
from ..nlp.porter import stem
from ..nlp.stopwords import is_stopword
from ..nlp.tokenizer import tokenize
from .paragraphs import Paragraph, split_paragraphs

__all__ = ["CollectionIndex", "StemCache", "IndexStats"]


class StemCache:
    """Memoized Porter stemming — the vocabulary is small and reused."""

    def __init__(self) -> None:
        self._cache: dict[str, str] = {}

    def __call__(self, word: str) -> str:
        key = word.lower()
        cached = self._cache.get(key)
        if cached is None:
            cached = stem(key)
            self._cache[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self._cache)


#: Shared process-wide stem cache (stemming is pure).
_GLOBAL_STEMS = StemCache()


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Size statistics used by the PR cost model."""

    n_documents: int
    n_paragraphs: int
    n_postings: int
    text_bytes: int

    @property
    def index_bytes(self) -> int:
        """Approximate on-disk index size (8 bytes per posting)."""
        return 8 * self.n_postings


class CollectionIndex:
    """Boolean inverted index of one sub-collection."""

    def __init__(
        self,
        collection: SubCollection,
        stemmer: StemCache | None = None,
    ) -> None:
        self.collection_id = collection.collection_id
        self._stem = stemmer or _GLOBAL_STEMS
        #: stem -> {doc_id: term frequency}
        self._postings: dict[str, dict[int, int]] = {}
        self._documents: dict[int, Document] = {}
        #: doc_id -> list of (paragraph, frozenset of stems)
        self._doc_paragraphs: dict[int, list[tuple[Paragraph, frozenset[str]]]] = {}
        n_paragraphs = 0
        text_bytes = 0
        for doc in collection.documents:
            self._documents[doc.doc_id] = doc
            text_bytes += doc.size_bytes
            paragraphs = split_paragraphs(doc.doc_id, self.collection_id, doc.text)
            n_paragraphs += len(paragraphs)
            entries: list[tuple[Paragraph, frozenset[str]]] = []
            doc_counts: dict[str, int] = {}
            for para in paragraphs:
                stems: set[str] = set()
                for tok in tokenize(para.text):
                    if not tok.is_word and not tok.text[0].isdigit():
                        continue
                    if is_stopword(tok.text):
                        continue
                    s = self._stem(tok.text)
                    stems.add(s)
                    doc_counts[s] = doc_counts.get(s, 0) + 1
                entries.append((para, frozenset(stems)))
            self._doc_paragraphs[doc.doc_id] = entries
            for s, tf in doc_counts.items():
                self._postings.setdefault(s, {})[doc.doc_id] = tf
        self.stats = IndexStats(
            n_documents=len(self._documents),
            n_paragraphs=n_paragraphs,
            n_postings=sum(len(p) for p in self._postings.values()),
            text_bytes=text_bytes,
        )

    # -- lookups ---------------------------------------------------------------
    def document_frequency(self, stem_: str) -> int:
        """Number of documents containing ``stem_``."""
        return len(self._postings.get(stem_, ()))

    def postings(self, stem_: str) -> dict[int, int]:
        """doc_id -> tf mapping for ``stem_`` (empty dict if absent)."""
        return self._postings.get(stem_, {})

    def posting_bytes(self, stem_: str) -> int:
        """Approximate bytes read to scan this stem's posting list."""
        return 8 * self.document_frequency(stem_)

    def document(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def doc_bytes(self, doc_id: int) -> int:
        return self._documents[doc_id].size_bytes

    def paragraphs_of(self, doc_id: int) -> list[tuple[Paragraph, frozenset[str]]]:
        """Paragraphs of a document with their stem sets."""
        return self._doc_paragraphs[doc_id]

    @property
    def doc_ids(self) -> t.KeysView[int]:
        return self._documents.keys()

    def vocabulary_size(self) -> int:
        return len(self._postings)
