"""Corpus-wide index management.

Builds and holds the per-sub-collection indexes ("each node has a copy of
the TREC-9 collection ... divided into 8 sub-collections, separately
indexed", Section 6) and offers corpus-level retrieval that iterates over
sub-collections — the iterative structure (granularity: Collection, Table
2) that both intra-question partitioning strategies exploit.
"""

from __future__ import annotations

import typing as t

from ..corpus.generator import Corpus
from ..nlp.keywords import Keyword
from .boolean import BooleanRetriever, RetrievalResult
from .inverted_index import CollectionIndex, StemCache

__all__ = ["IndexedCorpus"]


class IndexedCorpus:
    """All sub-collection indexes of a corpus, with uniform retrieval."""

    def __init__(
        self,
        corpus: Corpus,
        min_docs: int = 3,
        paragraph_quorum: float = 0.5,
    ) -> None:
        self.corpus = corpus
        stemmer = StemCache()
        self.indexes: list[CollectionIndex] = [
            CollectionIndex(coll, stemmer=stemmer)
            for coll in corpus.collections
        ]
        self.retrievers: list[BooleanRetriever] = [
            BooleanRetriever(ix, min_docs=min_docs, paragraph_quorum=paragraph_quorum)
            for ix in self.indexes
        ]

    @property
    def n_collections(self) -> int:
        return len(self.indexes)

    def retrieve_collection(
        self, collection_id: int, keywords: t.Sequence[Keyword]
    ) -> RetrievalResult:
        """Retrieve from one sub-collection (the PR sub-task unit)."""
        return self.retrievers[collection_id].retrieve(keywords)

    def retrieve_all(
        self, keywords: t.Sequence[Keyword]
    ) -> list[RetrievalResult]:
        """Retrieve from every sub-collection, in collection order."""
        return [
            self.retrieve_collection(cid, keywords)
            for cid in range(self.n_collections)
        ]

    def document_frequency(self, stem: str) -> int:
        """Corpus-wide document frequency of a stem."""
        return sum(ix.document_frequency(stem) for ix in self.indexes)

    def total_stats(self) -> dict[str, int]:
        """Aggregate index statistics across sub-collections."""
        return {
            "n_documents": sum(ix.stats.n_documents for ix in self.indexes),
            "n_paragraphs": sum(ix.stats.n_paragraphs for ix in self.indexes),
            "n_postings": sum(ix.stats.n_postings for ix in self.indexes),
            "text_bytes": sum(ix.stats.text_bytes for ix in self.indexes),
            "index_bytes": sum(ix.stats.index_bytes for ix in self.indexes),
        }
