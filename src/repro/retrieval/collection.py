"""Corpus-wide index management.

Builds and holds the per-sub-collection indexes ("each node has a copy of
the TREC-9 collection ... divided into 8 sub-collections, separately
indexed", Section 6) and offers corpus-level retrieval that iterates over
sub-collections — the iterative structure (granularity: Collection, Table
2) that both intra-question partitioning strategies exploit.

Indexing stems through the process-wide shared cache by default
(:data:`repro.nlp.stemming.SHARED_STEM_CACHE`), so building several
corpora — common in experiments and tests — reuses stems across
collections *and* across corpora instead of re-deriving them per
``IndexedCorpus``.
"""

from __future__ import annotations

import typing as t

from ..corpus.generator import Corpus
from ..nlp.keywords import Keyword
from ..nlp.stemming import SHARED_STEM_CACHE, StemCache
from .boolean import BooleanRetriever, RetrievalResult
from .inverted_index import CollectionIndex, ParagraphTerms
from .paragraphs import Paragraph
from .selection import CollectionSelector, CollectionSketch, sketch_of

__all__ = ["IndexedCorpus"]


class IndexedCorpus:
    """All sub-collection indexes of a corpus, with uniform retrieval.

    Parameters
    ----------
    corpus:
        The corpus to index.
    min_docs / paragraph_quorum:
        Relaxation floor and paragraph-extraction quorum, passed to every
        :class:`BooleanRetriever`.
    stemmer:
        Stem cache shared by all sub-collection indexes (defaults to the
        process-wide shared cache).
    conjunction_cache / galloping:
        Retriever hot-path knobs (see :class:`BooleanRetriever`).  The
        perf-regression harness sets ``conjunction_cache=0,
        galloping=False`` for its reference baseline.
    indexes:
        Pre-built sub-collection indexes to adopt instead of indexing
        ``corpus`` again — used by :meth:`reconfigured` so baseline and
        optimized retriever stacks can share one (expensive) index build.
    """

    def __init__(
        self,
        corpus: Corpus,
        min_docs: int = 3,
        paragraph_quorum: float = 0.5,
        stemmer: StemCache | None = None,
        conjunction_cache: int = 256,
        galloping: bool = True,
        indexes: list[CollectionIndex] | None = None,
    ) -> None:
        self.corpus = corpus
        self.min_docs = min_docs
        self.paragraph_quorum = paragraph_quorum
        stemmer = stemmer or SHARED_STEM_CACHE
        self.indexes: list[CollectionIndex] = (
            indexes
            if indexes is not None
            else [
                CollectionIndex(coll, stemmer=stemmer)
                for coll in corpus.collections
            ]
        )
        self.retrievers: list[BooleanRetriever] = [
            BooleanRetriever(
                ix,
                min_docs=min_docs,
                paragraph_quorum=paragraph_quorum,
                conjunction_cache=conjunction_cache,
                galloping=galloping,
            )
            for ix in self.indexes
        ]

    def reconfigured(
        self, conjunction_cache: int = 256, galloping: bool = True
    ) -> IndexedCorpus:
        """A retriever stack with different hot-path knobs, same indexes.

        Shares the already-built :class:`CollectionIndex` objects, so this
        is cheap — only the retrievers (and their caches) are new.
        """
        return IndexedCorpus(
            self.corpus,
            min_docs=self.min_docs,
            paragraph_quorum=self.paragraph_quorum,
            conjunction_cache=conjunction_cache,
            galloping=galloping,
            indexes=self.indexes,
        )

    @property
    def n_collections(self) -> int:
        return len(self.indexes)

    def retrieve_collection(
        self, collection_id: int, keywords: t.Sequence[Keyword]
    ) -> RetrievalResult:
        """Retrieve from one sub-collection (the PR sub-task unit)."""
        return self.retrievers[collection_id].retrieve(keywords)

    def retrieve_all(
        self, keywords: t.Sequence[Keyword]
    ) -> list[RetrievalResult]:
        """Retrieve from every sub-collection, in collection order."""
        return [
            self.retrieve_collection(cid, keywords)
            for cid in range(self.n_collections)
        ]

    def sketches(self) -> list[CollectionSketch]:
        """Per-sub-collection term-statistic sketches (cached on the
        indexes, shared with the disk-cache artifact)."""
        return [sketch_of(ix) for ix in self.indexes]

    def selector(
        self,
        mode: str = "exact",
        top_k: int | None = None,
        threshold: float = 0.0,
    ) -> CollectionSelector:
        """A :class:`CollectionSelector` over this corpus's sketches."""
        if not self.indexes:
            raise ValueError("cannot build a selector over zero collections")
        return CollectionSelector(
            self.sketches(),
            self.indexes[0].vocab,
            mode=mode,
            top_k=top_k,
            threshold=threshold,
        )

    def term_lookup(self, paragraph: Paragraph) -> ParagraphTerms | None:
        """Precomputed term view of ``paragraph`` (the PS/AP fast path)."""
        return self.indexes[paragraph.collection_id].paragraph_terms(
            paragraph.key
        )

    def document_frequency(self, stem: str) -> int:
        """Corpus-wide document frequency of a stem."""
        return sum(ix.document_frequency(stem) for ix in self.indexes)

    def total_stats(self) -> dict[str, int]:
        """Aggregate index statistics across sub-collections."""
        return {
            "n_documents": sum(ix.stats.n_documents for ix in self.indexes),
            "n_paragraphs": sum(ix.stats.n_paragraphs for ix in self.indexes),
            "n_postings": sum(ix.stats.n_postings for ix in self.indexes),
            "text_bytes": sum(ix.stats.text_bytes for ix in self.indexes),
            "index_bytes": sum(ix.stats.index_bytes for ix in self.indexes),
            "memory_bytes": sum(ix.stats.memory_bytes for ix in self.indexes),
        }
