"""Federated collection selection: prune the PR fan-out with term sketches.

Every question used to broadcast paragraph retrieval to all 8
sub-collections even though, for most keyword conjunctions, most
collections cannot contribute a single paragraph — and PR is the paper's
disk-dominated bottleneck (80 % disk time, Table 3).  Query-mediator
systems solve this at the broker: keep compact per-collection term
statistics and route each query only to the collections that can
contribute ("Using Query Mediators for Distributed Searching in
Federated Digital Libraries"; the same broker->server pruning argument
appears in "Design of a Parallel and Distributed Web Search Engine").

This module is that mediator layer:

* :class:`CollectionSketch` — per-collection term statistics as three
  parallel flat arrays keyed by the interned vocabulary id (sorted stem
  ids, per-stem document frequency, per-stem paragraph frequency) plus
  the collection's document/paragraph counts.  A sketch is derived from
  a :class:`~repro.retrieval.inverted_index.CollectionIndex`'s packed
  buffers and serializes/attaches with the v2 disk-cache artifact
  (:mod:`repro.retrieval.packing` remaps the ids like any other buffer).
* :class:`CollectionSelector` — decides, per question, which collections
  the PR fan-out visits.  Two modes:

  **exact** (the default) prunes only collections *provably* unable to
  contribute: the Boolean retriever's relaxation walk is replayed
  against the sketch, and a collection is skipped only when every
  relaxation round's conjunction provably evaluates empty (some active
  stem has document frequency zero there — the intersection upper bound
  is the minimum df).  Because the retriever charges each round's
  posting lists in stem order and stops at the first empty list, the
  skipped collection's logical work (``postings_scanned``,
  ``relaxation_rounds``) is computable from the sketch alone and is
  synthesized bit-identically — answers, paragraph ranks, and work
  counters never change, which the throughput bench's equivalence gate
  enforces.

  **predictive** scores collections mediator-style — df-weighted
  keyword coverage with an idf-like rarity weight, zeroed when the
  sketch's paragraph-presence bound says no keyword occurs in any
  paragraph — and keeps the top-k / above-threshold collections.
  Predictive selection may change answers; ``repro select`` reports its
  precision/recall/answer-agreement against exhaustive search.

A selection that would come back empty in predictive mode falls back to
exhaustive search (``fallback=True``): the selector may lose recall,
never questions.
"""

from __future__ import annotations

import math
import sys
import typing as t
from array import array
from bisect import bisect_left
from dataclasses import dataclass

from ..nlp.keywords import Keyword
from ..nlp.vocabulary import MISSING_ID, Vocabulary
from .inverted_index import CollectionIndex

__all__ = [
    "SELECTION_MODES",
    "CollectionSketch",
    "CollectionSelector",
    "PrunedWork",
    "SelectionDecision",
    "build_sketch",
    "sketch_of",
]

#: Selector modes, in documentation order.
SELECTION_MODES = ("exact", "predictive")


class PrunedWork(t.NamedTuple):
    """Synthesized logical work of one provably-empty (pruned) collection.

    The pruned collection would have run ``relaxation_rounds`` conjunction
    rounds, scanned ``postings_scanned`` posting entries, matched zero
    documents, and read zero document bytes — exactly what exhaustive
    retrieval reports for it.
    """

    collection_id: int
    postings_scanned: int
    relaxation_rounds: int


@dataclass(frozen=True, slots=True)
class SelectionDecision:
    """One question's routing decision over the sub-collections."""

    mode: str
    n_collections: int
    #: Collections the PR fan-out visits, ascending collection id.
    selected: tuple[int, ...]
    #: Collections skipped, ascending collection id.
    pruned: tuple[int, ...]
    #: Exact mode: per-pruned-collection synthesized work (empty in
    #: predictive mode — predictive pruning intentionally drops work).
    synthesized: tuple[PrunedWork, ...] = ()
    #: Predictive mode: per-collection scores in sketch order.
    scores: tuple[float, ...] = ()
    #: True when an empty predictive selection fell back to exhaustive.
    fallback: bool = False

    @property
    def prune_rate(self) -> float:
        """Fraction of the fan-out this decision avoided."""
        if not self.n_collections:
            return 0.0
        return len(self.pruned) / self.n_collections


class CollectionSketch:
    """Term statistics of one sub-collection, packed as flat arrays.

    ``stem_ids`` is the sorted array of vocabulary ids with at least one
    posting in the collection; ``dfs``/``pfs`` are parallel document and
    paragraph frequencies.  Lookups are binary searches; ids the
    vocabulary has never seen (:data:`~repro.nlp.vocabulary.MISSING_ID`)
    resolve to frequency zero, matching the retriever's empty-postings
    behaviour for unknown stems.
    """

    __slots__ = (
        "collection_id", "stem_ids", "dfs", "pfs",
        "n_documents", "n_paragraphs",
    )

    def __init__(
        self,
        collection_id: int,
        stem_ids: array,
        dfs: array,
        pfs: array,
        n_documents: int,
        n_paragraphs: int,
    ) -> None:
        self.collection_id = collection_id
        self.stem_ids = stem_ids
        self.dfs = dfs
        self.pfs = pfs
        self.n_documents = n_documents
        self.n_paragraphs = n_paragraphs

    def __len__(self) -> int:
        return len(self.stem_ids)

    def nbytes(self) -> int:
        """Resident bytes of the sketch arrays (the mediator's footprint)."""
        return sum(
            sys.getsizeof(a) for a in (self.stem_ids, self.dfs, self.pfs)
        )

    def _slot(self, tid: int) -> int:
        ids = self.stem_ids
        j = bisect_left(ids, tid)
        if tid >= 0 and j < len(ids) and ids[j] == tid:
            return j
        return -1

    def df_by_id(self, tid: int) -> int:
        """Document frequency of vocabulary id ``tid`` (0 if absent)."""
        j = self._slot(tid)
        return self.dfs[j] if j >= 0 else 0

    def pf_by_id(self, tid: int) -> int:
        """Paragraph frequency of vocabulary id ``tid`` (0 if absent)."""
        j = self._slot(tid)
        return self.pfs[j] if j >= 0 else 0

    def remapped(self, mapping: t.Sequence[int]) -> "CollectionSketch":
        """The sketch under a new id numbering (old id -> new id).

        New ids order differently, so the parallel arrays are re-sorted —
        the same invariant restoration :func:`~repro.retrieval.packing`
        applies to the index buffers.
        """
        get = mapping.__getitem__
        loc = sorted(
            range(len(self.stem_ids)),
            key=lambda j: get(self.stem_ids[j]),
        )
        return CollectionSketch(
            collection_id=self.collection_id,
            stem_ids=array("i", (get(self.stem_ids[j]) for j in loc)),
            dfs=array("I", (self.dfs[j] for j in loc)),
            pfs=array("I", (self.pfs[j] for j in loc)),
            n_documents=self.n_documents,
            n_paragraphs=self.n_paragraphs,
        )


def build_sketch(index: CollectionIndex) -> CollectionSketch:
    """Derive a :class:`CollectionSketch` from an index's packed buffers.

    Document frequencies come straight from the posting offset table;
    paragraph frequencies count each id's occurrences across the
    per-paragraph distinct-stem runs (each run holds a paragraph's stem
    ids once, so occurrences == paragraphs containing the stem).
    """
    buffers = index.buffers
    p_terms = buffers.p_terms
    p_offsets = buffers.p_offsets
    loc = sorted(range(len(p_terms)), key=p_terms.__getitem__)
    stem_ids = array("i", (p_terms[j] for j in loc))
    dfs = array("I", (p_offsets[j + 1] - p_offsets[j] for j in loc))
    counts: dict[int, int] = {}
    for tid in buffers.pset_ids:
        counts[tid] = counts.get(tid, 0) + 1
    pfs = array("I", (counts.get(tid, 0) for tid in stem_ids))
    return CollectionSketch(
        collection_id=index.collection_id,
        stem_ids=stem_ids,
        dfs=dfs,
        pfs=pfs,
        n_documents=index.stats.n_documents,
        n_paragraphs=index.stats.n_paragraphs,
    )


def sketch_of(index: CollectionIndex) -> CollectionSketch:
    """The (cached) sketch of ``index`` — built once, reused thereafter."""
    sketch = getattr(index, "_sketch", None)
    if sketch is None:
        sketch = build_sketch(index)
        index._sketch = sketch
    return sketch


def _keyword_ids(
    keywords: t.Sequence[Keyword], vocab: Vocabulary
) -> list[tuple[int, ...]]:
    """Per-keyword stem ids in relaxation order (lowest priority dropped
    last -> the list is sorted by priority, exactly like the retriever's
    ``active`` list)."""
    ordered = sorted(keywords, key=lambda k: k.priority)
    lookup = vocab.lookup
    return [tuple(lookup(s) for s in kw.stems) for kw in ordered]


def _provably_empty_charge(
    kw_ids: t.Sequence[tuple[int, ...]], sketch: CollectionSketch
) -> int | None:
    """Total postings charge if *every* relaxation round provably matches
    nothing in ``sketch``; ``None`` when any round might match.

    Mirrors :meth:`BooleanRetriever._conjunction` exactly: round ``r``
    evaluates the stems of the first ``k - r + 1`` keywords in order,
    charging each stem's posting-list length and stopping at the first
    empty list.  A round with a zero-df stem is provably empty (the
    conjunction is bounded by the minimum df); a round whose stems all
    have postings might match, so the collection must be searched.
    """
    df = sketch.df_by_id
    total = 0
    for n_active in range(len(kw_ids), 0, -1):
        stems = [tid for kw in kw_ids[:n_active] for tid in kw]
        if not stems:
            continue  # empty conjunction: no charge, provably empty
        charge = 0
        empty = False
        for tid in stems:
            n = df(tid)
            charge += n
            if n == 0:
                empty = True
                break
        if not empty:
            return None
        total += charge
    return total


class CollectionSelector:
    """Routes questions to sub-collections using per-collection sketches.

    Parameters
    ----------
    sketches:
        One :class:`CollectionSketch` per sub-collection (any order; kept
        as given, decisions report ascending collection ids).
    vocab:
        The vocabulary the sketch ids refer to (keyword stems are looked
        up here; unknown stems have frequency zero everywhere).
    mode:
        ``"exact"`` (provable pruning, bit-identical results) or
        ``"predictive"`` (mediator-style scored routing).
    top_k:
        Predictive mode: keep at most this many collections (None = no
        count cutoff).
    threshold:
        Predictive mode: drop collections scoring below this fraction of
        the best score (0.0 keeps every positive-scoring collection).
    """

    def __init__(
        self,
        sketches: t.Sequence[CollectionSketch],
        vocab: Vocabulary,
        mode: str = "exact",
        top_k: int | None = None,
        threshold: float = 0.0,
    ) -> None:
        if mode not in SELECTION_MODES:
            raise ValueError(
                f"unknown selection mode {mode!r}, want one of {SELECTION_MODES}"
            )
        if top_k is not None and top_k < 1:
            raise ValueError("top_k must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.sketches = list(sketches)
        self.vocab = vocab
        self.mode = mode
        self.top_k = top_k
        self.threshold = threshold
        self._total_docs = sum(sk.n_documents for sk in self.sketches)

    @property
    def n_collections(self) -> int:
        return len(self.sketches)

    def sketch_bytes(self) -> int:
        """Total resident bytes of the mediator's sketches."""
        return sum(sk.nbytes() for sk in self.sketches)

    def select(self, keywords: t.Sequence[Keyword]) -> SelectionDecision:
        """Decide which collections the PR fan-out should visit."""
        kw_ids = _keyword_ids(keywords, self.vocab)
        if self.mode == "exact":
            return self._select_exact(kw_ids)
        return self._select_predictive(kw_ids)

    # -- exact mode -------------------------------------------------------------
    def _select_exact(
        self, kw_ids: list[tuple[int, ...]]
    ) -> SelectionDecision:
        selected: list[int] = []
        synthesized: list[PrunedWork] = []
        rounds = len(kw_ids)
        for sk in self.sketches:
            charge = _provably_empty_charge(kw_ids, sk)
            if charge is None:
                selected.append(sk.collection_id)
            else:
                synthesized.append(
                    PrunedWork(sk.collection_id, charge, rounds)
                )
        synthesized.sort()
        return SelectionDecision(
            mode="exact",
            n_collections=len(self.sketches),
            selected=tuple(sorted(selected)),
            pruned=tuple(w.collection_id for w in synthesized),
            synthesized=tuple(synthesized),
        )

    # -- predictive mode --------------------------------------------------------
    def _rarity(self, kw: tuple[int, ...]) -> float:
        """Idf-like weight of a keyword: rarer (corpus-wide) weighs more."""
        gdf = max(
            (
                sum(sk.df_by_id(tid) for sk in self.sketches)
                for tid in kw
            ),
            default=0,
        )
        return math.log(1.0 + self._total_docs / (1.0 + gdf))

    def _score(self, kw_ids: list[tuple[int, ...]], sk: CollectionSketch) -> float:
        """Df-weighted keyword coverage of one collection.

        Zero when the paragraph-presence bound proves no keyword occurs
        in any of the collection's paragraphs — such a collection cannot
        pass the quorum filter even after full relaxation.
        """
        if not sk.n_documents:
            return 0.0
        score = 0.0
        any_paragraph_present = False
        for kw in kw_ids:
            best_df = max((sk.df_by_id(tid) for tid in kw), default=0)
            if not best_df:
                continue
            if any(sk.pf_by_id(tid) > 0 for tid in kw):
                any_paragraph_present = True
            score += self._rarity(kw) * best_df / sk.n_documents
        return score if any_paragraph_present else 0.0

    def _select_predictive(
        self, kw_ids: list[tuple[int, ...]]
    ) -> SelectionDecision:
        scores = tuple(self._score(kw_ids, sk) for sk in self.sketches)
        best = max(scores, default=0.0)
        cutoff = self.threshold * best
        candidates = [
            (scores[i], sk.collection_id)
            for i, sk in enumerate(self.sketches)
            if scores[i] > 0.0 and scores[i] >= cutoff
        ]
        candidates.sort(key=lambda sc: (-sc[0], sc[1]))
        if self.top_k is not None:
            candidates = candidates[: self.top_k]
        selected = sorted(cid for _, cid in candidates)
        all_ids = sorted(sk.collection_id for sk in self.sketches)
        fallback = not selected
        if fallback:
            # The stems hit no collection at all: fall back to exhaustive
            # search rather than answering from nothing.
            selected = all_ids
        keep = set(selected)
        return SelectionDecision(
            mode="predictive",
            n_collections=len(self.sketches),
            selected=tuple(selected),
            pruned=tuple(cid for cid in all_ids if cid not in keep),
            scores=scores,
            fallback=fallback,
        )
