"""Boolean information-retrieval substrate (the Zprise stand-in)."""

from .boolean import BooleanRetriever, RetrievalResult
from .collection import IndexedCorpus
from .inverted_index import CollectionIndex, IndexStats, ParagraphTerms, StemCache
from .paragraphs import Paragraph, split_paragraphs
from .prediction import QueryCostEstimate, predict_pr_cost, predict_pr_cost_corpus

__all__ = [
    "QueryCostEstimate",
    "predict_pr_cost",
    "predict_pr_cost_corpus",
    "BooleanRetriever",
    "CollectionIndex",
    "IndexStats",
    "IndexedCorpus",
    "Paragraph",
    "ParagraphTerms",
    "RetrievalResult",
    "StemCache",
    "split_paragraphs",
]
