"""Boolean information-retrieval substrate (the Zprise stand-in)."""

from .boolean import BooleanRetriever, RetrievalResult, SharedPostings
from .collection import IndexedCorpus
from .inverted_index import (
    CollectionIndex,
    IndexBuffers,
    IndexStats,
    ParagraphTerms,
    StemCache,
    StemSetView,
)
from .packing import attach_payload, indexes_to_payload, memory_footprint
from .paragraphs import Paragraph, split_paragraphs
from .prediction import QueryCostEstimate, predict_pr_cost, predict_pr_cost_corpus

__all__ = [
    "QueryCostEstimate",
    "predict_pr_cost",
    "predict_pr_cost_corpus",
    "BooleanRetriever",
    "CollectionIndex",
    "IndexBuffers",
    "IndexStats",
    "IndexedCorpus",
    "Paragraph",
    "ParagraphTerms",
    "RetrievalResult",
    "SharedPostings",
    "StemCache",
    "StemSetView",
    "attach_payload",
    "indexes_to_payload",
    "memory_footprint",
    "split_paragraphs",
]
