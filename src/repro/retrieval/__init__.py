"""Boolean information-retrieval substrate (the Zprise stand-in)."""

from .boolean import BooleanRetriever, RetrievalResult, SharedPostings
from .collection import IndexedCorpus
from .inverted_index import (
    CollectionIndex,
    IndexBuffers,
    IndexStats,
    ParagraphTerms,
    StemCache,
    StemSetView,
)
from .packing import attach_payload, indexes_to_payload, memory_footprint
from .paragraphs import Paragraph, split_paragraphs
from .prediction import QueryCostEstimate, predict_pr_cost, predict_pr_cost_corpus
from .selection import (
    SELECTION_MODES,
    CollectionSelector,
    CollectionSketch,
    PrunedWork,
    SelectionDecision,
    build_sketch,
    sketch_of,
)

__all__ = [
    "QueryCostEstimate",
    "predict_pr_cost",
    "predict_pr_cost_corpus",
    "SELECTION_MODES",
    "BooleanRetriever",
    "CollectionIndex",
    "CollectionSelector",
    "CollectionSketch",
    "IndexBuffers",
    "IndexStats",
    "IndexedCorpus",
    "Paragraph",
    "ParagraphTerms",
    "PrunedWork",
    "RetrievalResult",
    "SelectionDecision",
    "SharedPostings",
    "StemCache",
    "StemSetView",
    "attach_payload",
    "build_sketch",
    "indexes_to_payload",
    "memory_footprint",
    "sketch_of",
    "split_paragraphs",
]
