"""Serialization and measurement of the packed index data plane.

Because a :class:`~repro.retrieval.inverted_index.CollectionIndex` is a
handful of flat ``array`` buffers plus lookup tables derived from the
corpus, its complete state (minus the corpus itself) serializes as raw
bytes — roughly an order of magnitude cheaper than re-tokenizing and
re-stemming the corpus.  This module defines that artifact:

* :func:`indexes_to_payload` — snapshot a list of collection indexes
  (shared-reference, no buffer copies) together with the vocabulary term
  table their ids refer to;
* :func:`attach_payload` — reconstruct the indexes against a corpus in a
  (possibly different) process.  When the live vocabulary already starts
  with the payload's term table — the common case for workers attaching
  before interning anything else — ids are valid as-is and attach is a
  zero-rebuild reslice.  Otherwise every id array is remapped through a
  freshly interned translation table and the per-paragraph sorted runs
  are re-derived (ids order differently under new numbering);
* :func:`memory_footprint` — measured resident size of the packed layout
  next to the dict-of-dicts layout it replaced, so the benchmark reports
  the reduction instead of asserting it.

Vocabulary ids are process-local, which is exactly why the payload
carries the term table: correctness never depends on two processes
agreeing on ids, only on each process's arrays matching its own
vocabulary.
"""

from __future__ import annotations

import sys
import typing as t
from array import array

from ..corpus.generator import Corpus
from ..nlp.tokenizer import Token
from ..nlp.vocabulary import SHARED_VOCABULARY, Vocabulary
from .inverted_index import CollectionIndex, IndexBuffers
from .paragraphs import Paragraph
from .selection import CollectionSketch, sketch_of

__all__ = [
    "PAYLOAD_SCHEMA",
    "indexes_to_payload",
    "attach_payload",
    "memory_footprint",
    "dict_layout_bytes",
]

#: Bump when the buffer layout changes; mismatched payloads are rejected.
PAYLOAD_SCHEMA = "packed-index/v2"

_BUFFER_FIELDS = (
    "t_offsets", "starts", "lengths", "stem_ids", "order", "sorted_ids",
    "pset_offsets", "pset_ids", "p_terms", "p_offsets", "p_docs", "p_tfs",
)


# -- serialization ---------------------------------------------------------------
def indexes_to_payload(
    indexes: t.Sequence[CollectionIndex],
    vocabulary: Vocabulary | None = None,
) -> dict[str, t.Any]:
    """Snapshot ``indexes`` into a picklable payload (no buffer copies)."""
    vocab = vocabulary or SHARED_VOCABULARY
    return {
        "schema": PAYLOAD_SCHEMA,
        "vocab_table": vocab.table(),
        "collections": [
            {
                "collection_id": ix.collection_id,
                "buffers": {
                    name: getattr(ix.buffers, name) for name in _BUFFER_FIELDS
                },
                "sketch": _sketch_entry(sketch_of(ix)),
            }
            for ix in indexes
        ],
    }


def _sketch_entry(sketch: CollectionSketch) -> dict[str, t.Any]:
    """Picklable form of one collection's term-statistic sketch."""
    return {
        "stem_ids": sketch.stem_ids,
        "dfs": sketch.dfs,
        "pfs": sketch.pfs,
        "n_documents": sketch.n_documents,
        "n_paragraphs": sketch.n_paragraphs,
    }


def _sketch_from_entry(
    collection_id: int,
    raw: dict[str, t.Any],
    mapping: t.Sequence[int] | None,
) -> CollectionSketch:
    sketch = CollectionSketch(
        collection_id=collection_id,
        stem_ids=raw["stem_ids"],
        dfs=raw["dfs"],
        pfs=raw["pfs"],
        n_documents=raw["n_documents"],
        n_paragraphs=raw["n_paragraphs"],
    )
    return sketch.remapped(mapping) if mapping is not None else sketch


def _copy_buffers(raw: dict[str, array]) -> IndexBuffers:
    missing = [name for name in _BUFFER_FIELDS if name not in raw]
    if missing:
        raise ValueError(f"index payload missing buffers: {missing}")
    return IndexBuffers(**{name: raw[name] for name in _BUFFER_FIELDS})


def _remap_buffers(buffers: IndexBuffers, mapping: t.Sequence[int]) -> None:
    """Rewrite every id array through ``mapping`` (old id -> new id).

    New ids order differently than old ones, so the derived sorted
    structures — per-paragraph ``order``/``sorted_ids`` runs and the
    per-paragraph ``pset_ids`` runs — are re-sorted in place.  Posting
    slots need no re-sort (they are keyed, not ordered, and doc ids are
    untouched).
    """
    get = mapping.__getitem__
    buffers.stem_ids = array("i", map(get, buffers.stem_ids))
    buffers.p_terms = array("i", map(get, buffers.p_terms))
    stem_ids = buffers.stem_ids
    t_offsets = buffers.t_offsets
    order = array("H")
    sorted_ids = array("i")
    for p in range(len(t_offsets) - 1):
        lo, hi = t_offsets[p], t_offsets[p + 1]
        ids = stem_ids[lo:hi]
        loc = sorted(range(len(ids)), key=ids.__getitem__)
        order.extend(loc)
        sorted_ids.extend(ids[j] for j in loc)
    buffers.order = order
    buffers.sorted_ids = sorted_ids
    pset_offsets = buffers.pset_offsets
    old_pset = buffers.pset_ids
    pset_ids = array("i")
    for p in range(len(pset_offsets) - 1):
        pset_ids.extend(sorted(map(get, old_pset[pset_offsets[p]:pset_offsets[p + 1]])))
    buffers.pset_ids = pset_ids


def attach_payload(
    corpus: Corpus,
    payload: dict[str, t.Any],
    vocabulary: Vocabulary | None = None,
) -> list[CollectionIndex]:
    """Reconstruct collection indexes from ``payload`` against ``corpus``.

    Raises :class:`ValueError` when the payload's schema or shape does
    not match — callers treat that as a cache miss and rebuild.
    """
    if payload.get("schema") != PAYLOAD_SCHEMA:
        raise ValueError(
            f"unexpected index payload schema {payload.get('schema')!r}"
        )
    vocab = vocabulary or SHARED_VOCABULARY
    table = payload["vocab_table"]
    if vocab.matches_prefix(table):
        mapping = None
    else:
        mapping = array("i", (vocab.intern(term) for term in table))
        if all(mapping[i] == i for i in range(len(mapping))):
            mapping = None  # fresh vocab interned the table verbatim
    by_id = {entry["collection_id"]: entry for entry in payload["collections"]}
    if sorted(by_id) != sorted(c.collection_id for c in corpus.collections):
        raise ValueError("index payload does not cover the corpus collections")
    indexes: list[CollectionIndex] = []
    for collection in corpus.collections:
        entry = by_id[collection.collection_id]
        buffers = _copy_buffers(entry["buffers"])
        if mapping is not None:
            _remap_buffers(buffers, mapping)
        index = CollectionIndex.from_buffers(collection, buffers, vocabulary=vocab)
        # Older artifacts carry no sketch; leave it to lazy derivation.
        if "sketch" in entry:
            index._sketch = _sketch_from_entry(
                collection.collection_id, entry["sketch"], mapping
            )
        indexes.append(index)
    return indexes


# -- memory measurement ----------------------------------------------------------
def _deep_bytes(roots: t.Iterable[object], seen: set[int]) -> int:
    """Recursive ``sys.getsizeof`` over containers, deduplicated by id.

    Strings are skipped everywhere: stems and surface forms are interned
    and shared by both layouts (vocabulary table vs. dict keys), so
    counting them would only blur the structural comparison.  Paragraph
    text is likewise owned by the corpus, not the index.
    """
    total = 0
    stack = list(roots)
    while stack:
        obj = stack.pop()
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(obj, str):
            continue
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif isinstance(obj, Token):
            stack.extend((obj.start, obj.end))
        elif isinstance(obj, Paragraph):
            pass  # owned by the corpus; identical in both layouts
    return total


def dict_layout_bytes(index: CollectionIndex) -> int:
    """Measured size of the dict-of-dicts layout this index replaced.

    Materializes, per collection, the exact structures of the previous
    implementation — ``{stem: {doc_id: tf}}`` postings with a parallel
    sorted-doc-id dict, per-document ``(paragraph, frozenset[str])``
    lists, and per-paragraph ``(tokens, stems_at, {stem: positions})``
    views — measures them, and lets them go.  This keeps the benchmark's
    "memory reduced Nx" column a measurement of real objects rather than
    an estimate.
    """
    seen: set[int] = set()
    total = 0
    postings: dict[str, dict[int, int]] = {}
    sorted_postings: dict[str, list[int]] = {}
    for stem_, _df in index.iter_terms():
        postings[stem_] = index.postings(stem_)
        sorted_postings[stem_] = sorted(postings[stem_])
    total += _deep_bytes((postings, sorted_postings), seen)
    del postings, sorted_postings
    for doc_id in index.doc_ids:
        doc_paragraphs = [
            (para, frozenset(stems))
            for para, stems in index.paragraphs_of(doc_id)
        ]
        paragraph_terms = {}
        for para, _ in doc_paragraphs:
            terms = index.paragraph_terms(para.key)
            assert terms is not None
            tokens = tuple(terms.tokens)
            paragraph_terms[para.key] = (tokens, terms.stems_at, terms.positions)
        total += _deep_bytes((doc_paragraphs, paragraph_terms), seen)
    return total


def memory_footprint(
    indexes: t.Sequence[CollectionIndex],
    vocabulary: Vocabulary | None = None,
    measure_dict_layout: bool = True,
) -> dict[str, t.Any]:
    """Resident-size report of the packed layout vs. the dict layout."""
    vocab = vocabulary or SHARED_VOCABULARY
    packed = sum(ix.stats.memory_bytes for ix in indexes)
    # The shared vocabulary's containers are part of the packed design's
    # cost; attribute them once (strings excluded on both sides).
    packed += sys.getsizeof(vocab) + _deep_bytes(
        (vocab.table(), dict.fromkeys(vocab.table(), 0)), set()
    )
    report: dict[str, t.Any] = {"packed_bytes": packed}
    if measure_dict_layout:
        legacy = sum(dict_layout_bytes(ix) for ix in indexes)
        report["dict_layout_bytes"] = legacy
        report["reduction"] = legacy / packed if packed else float("inf")
    return report
