"""Boolean retrieval with Falcon-style keyword relaxation.

"Falcon currently uses a Boolean IR system, hence documents and paragraphs
are not ranked after the PR phase" (Section 2.1).  The query is the AND of
the selected keywords; when the conjunction matches too few documents the
engine *relaxes* — drops the lowest-priority keyword — and retries, the
LASSO/Falcon retrieval loop.

Two hot-path optimizations (both behaviour-preserving):

* conjunctions intersect **sorted posting arrays smallest-first with
  galloping binary search** instead of materializing a Python set per
  stem — the classic small-vs-large adaptive intersection of web search
  engines (cs/0407053);
* a **bounded LRU conjunction cache** keyed by the ordered stem tuple of
  the active keywords memoizes conjunction results, so relaxation rounds
  of repeated (Zipf-popular) questions reuse sub-conjunctions instead of
  rescanning posting lists (query-result caching, arXiv:1006.5059).

Both operate directly on the index's packed id arrays: posting lists are
read-only sorted doc-id views sliced out of one flat buffer, and the
paragraph keyword-quorum filter probes the flat per-paragraph stem-id
runs by binary search instead of comparing string sets.

The engine reports, along with its results, the work it performed
(postings scanned, document bytes read) so the simulation's cost model can
charge realistic disk time for each sub-collection.  **Cached hits charge
the same logical work as a cold evaluation** — the cost model measures the
work the paper's system would do, not our memoization shortcuts — so
Table 3 resource weights and the PR cost model are unchanged.
"""

from __future__ import annotations

import typing as t
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass

from ..nlp.keywords import Keyword
from .inverted_index import CollectionIndex
from .paragraphs import Paragraph

__all__ = ["RetrievalResult", "BooleanRetriever", "SharedPostings"]


class SharedPostings:
    """Batch-scoped posting-list fetch sharing for one sub-collection.

    While a batch is active (:meth:`BooleanRetriever.begin_batch`), every
    posting-list resolution goes through this map, so distinct questions
    sharing a stem — the common case under a Zipf question stream —
    resolve each stem's postings against the index once per batch.  The
    views themselves are the index's read-only memoryview slices; sharing
    them is free and cannot change results.  ``fetches``/``shared`` feed
    the ``retrieval.batch.*`` sharing-factor metrics.
    """

    __slots__ = ("views", "fetches", "shared")

    def __init__(self) -> None:
        self.views: dict[str, memoryview] = {}
        self.fetches = 0
        self.shared = 0


@dataclass(slots=True)
class RetrievalResult:
    """Outcome of retrieval against one sub-collection."""

    collection_id: int
    paragraphs: list[Paragraph]
    #: Keywords actually used after relaxation.
    used_keywords: list[Keyword]
    #: Documents that matched the final conjunction.
    matched_docs: list[int]
    #: Work accounting for the cost model.
    postings_scanned: int = 0
    doc_bytes_read: int = 0
    relaxation_rounds: int = 0


def _intersect_sorted(small: t.Sequence[int], large: t.Sequence[int]) -> list[int]:
    """Intersection of two sorted doc-id arrays, probing the larger one.

    Walks the smaller array and advances a binary-search lower bound into
    the larger — O(|small| · log |large|), which beats a linear merge when
    the lists are badly skewed (they usually are, under Zipf).
    """
    out: list[int] = []
    lo = 0
    hi = len(large)
    for x in small:
        lo = bisect_left(large, x, lo, hi)
        if lo == hi:
            break
        if large[lo] == x:
            out.append(x)
            lo += 1
    return out


class _ConjunctionCache:
    """Bounded LRU of conjunction results.

    Values are ``(docs, charged)`` where ``charged`` is the number of
    postings a cold evaluation scans for this key — replayed into the
    caller's accounting on every hit so cached and uncached retrievals
    report identical logical work.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[
            tuple[t.Any, ...], tuple[frozenset[int], int]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple[t.Any, ...]) -> tuple[frozenset[int], int] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple[t.Any, ...], docs: frozenset[int], charged: int) -> None:
        self._entries[key] = (docs, charged)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class BooleanRetriever:
    """Conjunctive Boolean retrieval over one :class:`CollectionIndex`.

    Parameters
    ----------
    index:
        The sub-collection index to search.
    min_docs:
        Relax the query until at least this many documents match (or only
        one keyword is left).
    paragraph_quorum:
        Fraction of the (relaxed) query's keywords a paragraph must contain
        to be extracted.  1.0 reproduces strict Boolean paragraph filtering;
        lower values emulate Falcon's more permissive post-processing.
    conjunction_cache:
        Capacity of the LRU conjunction-result cache (0 disables caching).
    galloping:
        Use sorted-array galloping intersection.  ``False`` falls back to
        the original per-stem set intersection — kept as the reference
        implementation for the perf-regression harness's baseline runs.
    """

    def __init__(
        self,
        index: CollectionIndex,
        min_docs: int = 3,
        paragraph_quorum: float = 0.5,
        conjunction_cache: int = 256,
        galloping: bool = True,
    ) -> None:
        if not 0.0 < paragraph_quorum <= 1.0:
            raise ValueError("paragraph_quorum must be in (0, 1]")
        if min_docs < 1:
            raise ValueError("min_docs must be >= 1")
        if conjunction_cache < 0:
            raise ValueError("conjunction_cache must be >= 0")
        self.index = index
        self.min_docs = min_docs
        self.paragraph_quorum = paragraph_quorum
        self.galloping = galloping
        self._cache = (
            _ConjunctionCache(conjunction_cache) if conjunction_cache else None
        )
        self._shared: SharedPostings | None = None

    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the conjunction cache (zeros if off)."""
        if self._cache is None:
            return {"hits": 0, "misses": 0, "size": 0}
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "size": len(self._cache),
        }

    # -- batch hooks --------------------------------------------------------------
    def begin_batch(self, shared: SharedPostings) -> None:
        """Route posting-list fetches through a batch-scoped shared map."""
        self._shared = shared

    def end_batch(self) -> None:
        """Detach the batch-scoped postings map (serial behaviour resumes)."""
        self._shared = None

    def replay_rounds(self, rounds: t.Sequence[tuple[str, ...]]) -> None:
        """Re-touch the conjunction cache as a serial re-run would.

        ``rounds`` is the per-relaxation-round stem-key sequence recorded
        by :meth:`retrieve` (``round_trace``) during a question's first
        execution.  Replaying a duplicate question issues the same cache
        gets — recomputing and re-inserting on a miss, exactly like
        :meth:`_conjunction` — so hit/miss counters, LRU order and
        eviction behaviour stay bit-identical to serial execution while
        the (deterministic) results themselves are reused.
        """
        cache = self._cache
        if cache is None:
            return
        cid = self.index.collection_id
        for stems in rounds:
            if not stems:
                continue
            if cache.get((cid, stems)) is None:
                docs, charged = (
                    self._evaluate_galloping(stems)
                    if self.galloping
                    else self._evaluate_sets(stems)
                )
                cache.put((cid, stems), docs, charged)

    # -- public API ---------------------------------------------------------------
    def retrieve(
        self,
        keywords: t.Sequence[Keyword],
        round_trace: list[tuple[str, ...]] | None = None,
    ) -> RetrievalResult:
        """Run the retrieval loop for ``keywords`` against this collection.

        ``round_trace``, when given, collects the conjunction stem key of
        every relaxation round — the batch engine's replay script for
        duplicate questions (:meth:`replay_rounds`).
        """
        result = RetrievalResult(
            collection_id=self.index.collection_id,
            paragraphs=[],
            used_keywords=[],
            matched_docs=[],
        )
        if not keywords:
            return result

        # Relaxation loop: drop the lowest-priority keyword until enough
        # documents match.
        active = sorted(keywords, key=lambda k: k.priority)
        docs: t.AbstractSet[int] = set()
        while active:
            docs = self._conjunction(active, result, round_trace)
            result.relaxation_rounds += 1
            if len(docs) >= self.min_docs or len(active) == 1:
                break
            active = active[:-1]

        result.used_keywords = list(active)
        result.matched_docs = sorted(docs)
        if not docs:
            return result

        # Paragraph extraction: read matching documents, keep paragraphs
        # meeting the keyword quorum.  A keyword is "present" when every
        # one of its (distinct) stem ids occurs in the paragraph's sorted
        # indexed-stem run — the packed equivalent of the old
        # ``frozenset[str]`` subset test.  A stem the vocabulary has never
        # seen maps to the negative sentinel, which no run contains.
        lookup = self.index.vocab.lookup
        ids_per_kw = [
            tuple({lookup(s) for s in kw.stems}) for kw in active
        ]
        pset = self.index.paragraph_stem_ids
        needed = max(1, int(round(self.paragraph_quorum * len(active))))
        for doc_id in result.matched_docs:
            result.doc_bytes_read += self.index.doc_bytes(doc_id)
            for para, lo, hi in self.index.paragraph_spans(doc_id):
                present = 0
                for kw_ids in ids_per_kw:
                    for tid in kw_ids:
                        j = bisect_left(pset, tid, lo, hi)
                        if j >= hi or pset[j] != tid:
                            break
                    else:
                        present += 1
                if present >= needed:
                    result.paragraphs.append(para)
        return result

    # -- internals ---------------------------------------------------------------
    def _conjunction(
        self,
        active: t.Sequence[Keyword],
        result: RetrievalResult,
        round_trace: list[tuple[str, ...]] | None = None,
    ) -> t.AbstractSet[int]:
        """Docs containing *every* stem of *every* active keyword.

        The stem tuple preserves keyword order and duplicates so that the
        charged ``postings_scanned`` — each active stem's full posting
        list, stopping at the first empty one — is byte-identical to the
        reference implementation's accounting.
        """
        stems = tuple(s for kw in active for s in kw.stems)
        if round_trace is not None:
            round_trace.append(stems)
        if not stems:
            return set()

        if self._cache is not None:
            key = (self.index.collection_id, stems)
            cached = self._cache.get(key)
            if cached is not None:
                docs, charged = cached
                result.postings_scanned += charged
                return docs

        docs, charged = (
            self._evaluate_galloping(stems)
            if self.galloping
            else self._evaluate_sets(stems)
        )
        result.postings_scanned += charged
        if self._cache is not None:
            self._cache.put((self.index.collection_id, stems), docs, charged)
        return docs

    def _fetch_postings(self, stem: str) -> memoryview:
        """One stem's sorted posting view, shared across a batch if active.

        The views are read-only slices of the index's flat posting
        buffer, so serving a repeat fetch from the batch map is pure
        amortization — same object, same contents, same charge.
        """
        shared = self._shared
        if shared is None:
            return self.index.sorted_postings(stem)
        view = shared.views.get(stem)
        if view is not None:
            shared.shared += 1
            return view
        view = self.index.sorted_postings(stem)
        shared.views[stem] = view
        shared.fetches += 1
        return view

    def _evaluate_galloping(
        self, stems: tuple[str, ...]
    ) -> tuple[frozenset[int], int]:
        """Size-ordered sorted-array intersection with galloping probes."""
        charged = 0
        arrays: list[memoryview] = []
        for s in stems:
            postings = self._fetch_postings(s)
            n = len(postings)
            charged += n
            if n == 0:
                return frozenset(), charged
            arrays.append(postings)
        arrays.sort(key=len)
        current: t.Sequence[int] = arrays[0]
        for arr in arrays[1:]:
            current = _intersect_sorted(current, arr)
            if not current:
                break
        return frozenset(current), charged

    def _evaluate_sets(self, stems: tuple[str, ...]) -> tuple[frozenset[int], int]:
        """Reference implementation: per-stem doc sets, smallest-first."""
        charged = 0
        doc_sets: list[set[int]] = []
        for s in stems:
            postings = self._fetch_postings(s)
            charged += len(postings)
            if not len(postings):
                return frozenset(), charged
            doc_sets.append(set(postings))
        if not doc_sets:
            return frozenset(), charged
        doc_sets.sort(key=len)
        docs = doc_sets[0]
        for ds in doc_sets[1:]:
            docs = docs & ds
            if not docs:
                break
        return frozenset(docs), charged
