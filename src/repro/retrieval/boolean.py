"""Boolean retrieval with Falcon-style keyword relaxation.

"Falcon currently uses a Boolean IR system, hence documents and paragraphs
are not ranked after the PR phase" (Section 2.1).  The query is the AND of
the selected keywords; when the conjunction matches too few documents the
engine *relaxes* — drops the lowest-priority keyword — and retries, the
LASSO/Falcon retrieval loop.

The engine reports, along with its results, the work it performed
(postings scanned, document bytes read) so the simulation's cost model can
charge realistic disk time for each sub-collection.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..nlp.keywords import Keyword
from .inverted_index import CollectionIndex
from .paragraphs import Paragraph

__all__ = ["RetrievalResult", "BooleanRetriever"]


@dataclass(slots=True)
class RetrievalResult:
    """Outcome of retrieval against one sub-collection."""

    collection_id: int
    paragraphs: list[Paragraph]
    #: Keywords actually used after relaxation.
    used_keywords: list[Keyword]
    #: Documents that matched the final conjunction.
    matched_docs: list[int]
    #: Work accounting for the cost model.
    postings_scanned: int = 0
    doc_bytes_read: int = 0
    relaxation_rounds: int = 0


class BooleanRetriever:
    """Conjunctive Boolean retrieval over one :class:`CollectionIndex`.

    Parameters
    ----------
    index:
        The sub-collection index to search.
    min_docs:
        Relax the query until at least this many documents match (or only
        one keyword is left).
    paragraph_quorum:
        Fraction of the (relaxed) query's keywords a paragraph must contain
        to be extracted.  1.0 reproduces strict Boolean paragraph filtering;
        lower values emulate Falcon's more permissive post-processing.
    """

    def __init__(
        self,
        index: CollectionIndex,
        min_docs: int = 3,
        paragraph_quorum: float = 0.5,
    ) -> None:
        if not 0.0 < paragraph_quorum <= 1.0:
            raise ValueError("paragraph_quorum must be in (0, 1]")
        if min_docs < 1:
            raise ValueError("min_docs must be >= 1")
        self.index = index
        self.min_docs = min_docs
        self.paragraph_quorum = paragraph_quorum

    # -- public API ---------------------------------------------------------------
    def retrieve(self, keywords: t.Sequence[Keyword]) -> RetrievalResult:
        """Run the retrieval loop for ``keywords`` against this collection."""
        result = RetrievalResult(
            collection_id=self.index.collection_id,
            paragraphs=[],
            used_keywords=[],
            matched_docs=[],
        )
        if not keywords:
            return result

        # Relaxation loop: drop the lowest-priority keyword until enough
        # documents match.
        active = sorted(keywords, key=lambda k: k.priority)
        docs: set[int] = set()
        while active:
            docs = self._conjunction(active, result)
            result.relaxation_rounds += 1
            if len(docs) >= self.min_docs or len(active) == 1:
                break
            active = active[:-1]

        result.used_keywords = list(active)
        result.matched_docs = sorted(docs)
        if not docs:
            return result

        # Paragraph extraction: read matching documents, keep paragraphs
        # meeting the keyword quorum.
        stems_per_kw = [set(kw.stems) for kw in active]
        needed = max(1, int(round(self.paragraph_quorum * len(active))))
        for doc_id in result.matched_docs:
            result.doc_bytes_read += self.index.doc_bytes(doc_id)
            for para, para_stems in self.index.paragraphs_of(doc_id):
                present = sum(
                    1 for kw_stems in stems_per_kw if kw_stems <= para_stems
                )
                if present >= needed:
                    result.paragraphs.append(para)
        return result

    # -- internals ---------------------------------------------------------------
    def _conjunction(
        self, active: t.Sequence[Keyword], result: RetrievalResult
    ) -> set[int]:
        """Docs containing *every* stem of *every* active keyword."""
        doc_sets: list[set[int]] = []
        for kw in active:
            for s in kw.stems:
                postings = self.index.postings(s)
                result.postings_scanned += len(postings)
                if not postings:
                    return set()
                doc_sets.append(set(postings.keys()))
        if not doc_sets:
            return set()
        doc_sets.sort(key=len)
        docs = doc_sets[0]
        for ds in doc_sets[1:]:
            docs = docs & ds
            if not docs:
                return set()
        return docs
