"""Metric summaries shared by the experiments and benchmarks."""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

if t.TYPE_CHECKING:  # pragma: no cover
    from ..core.system import WorkloadReport

__all__ = [
    "FailureAccounting",
    "LatencySummary",
    "failure_accounting",
    "percentile",
    "summarize_latencies",
    "summarize_samples",
    "speedup_table",
]


def percentile(samples: t.Sequence[float], q: float) -> float:
    """The ``q``-quantile (``q`` in [0, 1]) of ``samples``; 0.0 when empty.

    The single percentile definition shared by every report writer
    (linearly interpolated, matching ``numpy.percentile``) — the
    experiments used to hand-roll their own nearest-rank variants.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), 100.0 * q))


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Distributional summary of question response times."""

    n: int
    mean_s: float
    median_s: float
    p95_s: float
    min_s: float
    max_s: float
    p99_s: float = 0.0

    @property
    def p50_s(self) -> float:
        """The median under its percentile name (JSON symmetry with p95/p99)."""
        return self.median_s

    def to_dict(self) -> dict[str, float | int]:
        """JSON-friendly form used by all report writers."""
        return {
            "n": self.n,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean_s:.2f}s median={self.median_s:.2f}s "
            f"p95={self.p95_s:.2f}s range=[{self.min_s:.2f}, {self.max_s:.2f}]"
        )


def summarize_samples(samples: t.Sequence[float]) -> LatencySummary:
    """Summarize any sample sequence (seconds) as a :class:`LatencySummary`."""
    times = np.asarray(samples, dtype=float)
    if times.size == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return LatencySummary(
        n=int(times.size),
        mean_s=float(times.mean()),
        median_s=float(np.median(times)),
        p95_s=float(np.percentile(times, 95)),
        min_s=float(times.min()),
        max_s=float(times.max()),
        p99_s=float(np.percentile(times, 99)),
    )


def summarize_latencies(report: "WorkloadReport") -> LatencySummary:
    """Summarize a workload report's response-time distribution."""
    return summarize_samples([r.response_time for r in report.results])


@dataclass(frozen=True, slots=True)
class FailureAccounting:
    """Question-conservation summary of one (possibly chaotic) run.

    The invariant the chaos campaign asserts on every cell:
    ``completed + lost + in_flight == admitted``.
    """

    admitted: int
    completed: int
    lost: int
    in_flight: int
    retries: int
    mean_recovery_latency_s: float

    @property
    def balanced(self) -> bool:
        return self.completed + self.lost + self.in_flight == self.admitted

    @property
    def loss_rate(self) -> float:
        return self.lost / self.admitted if self.admitted else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"admitted={self.admitted} completed={self.completed} "
            f"lost={self.lost} in_flight={self.in_flight} "
            f"retries={self.retries} "
            f"recovery={self.mean_recovery_latency_s:.1f}s"
        )


def failure_accounting(report: "WorkloadReport") -> FailureAccounting:
    """Extract the question-conservation ledger from a workload report."""
    return FailureAccounting(
        admitted=report.n_admitted,
        completed=report.n_completed,
        lost=report.n_lost,
        in_flight=report.n_in_flight,
        retries=report.n_retries,
        mean_recovery_latency_s=report.mean_recovery_latency_s,
    )


def speedup_table(
    baseline: t.Mapping[str, float], parallel: t.Mapping[str, float]
) -> dict[str, float]:
    """Per-key speedup of ``baseline`` over ``parallel`` (0 when undefined)."""
    out: dict[str, float] = {}
    for key, base in baseline.items():
        par = parallel.get(key, 0.0)
        out[key] = base / par if par > 0 else 0.0
    return out
