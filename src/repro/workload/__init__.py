"""Workload generation and metric summaries."""

from .arrivals import (
    high_load_count,
    poisson_arrivals,
    staggered_arrivals,
    trec_mix_profiles,
)
from .metrics import (
    FailureAccounting,
    LatencySummary,
    failure_accounting,
    percentile,
    speedup_table,
    summarize_latencies,
    summarize_samples,
)

__all__ = [
    "FailureAccounting",
    "LatencySummary",
    "failure_accounting",
    "high_load_count",
    "percentile",
    "poisson_arrivals",
    "speedup_table",
    "staggered_arrivals",
    "summarize_latencies",
    "summarize_samples",
    "trec_mix_profiles",
]
