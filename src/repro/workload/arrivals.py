"""Workload arrival-time generation (the Section 6.1 protocol).

"The system is brought to a high load state by starting twice the number
of questions that will generate an overload state (8N, where N is the
number of processors), at intervals of time ranging between 0 and 2
seconds.  The questions were selected randomly from the TREC-8 and TREC-9
question set ...  the same questions and the same startup sequence for all
tests."
"""

from __future__ import annotations

import typing as t

import numpy as np

__all__ = ["staggered_arrivals", "poisson_arrivals", "high_load_count"]

#: Full load is 4 simultaneous questions per node (256 MB / 25-40 MB each);
#: the paper doubles that to force overload.
QUESTIONS_PER_NODE_OVERLOAD = 8


def high_load_count(n_nodes: int) -> int:
    """The paper's high-load question count: 8 per processor."""
    return QUESTIONS_PER_NODE_OVERLOAD * n_nodes


def staggered_arrivals(
    n_questions: int,
    max_stagger_s: float = 2.0,
    seed: int = 0,
) -> list[float]:
    """Arrival times with inter-arrival gaps uniform in [0, max_stagger].

    Returns a non-decreasing list of absolute arrival times.  The same
    seed yields the same startup sequence, as the evaluation protocol
    requires.
    """
    if n_questions < 0:
        raise ValueError("n_questions must be non-negative")
    rng = np.random.default_rng(seed)
    gaps = rng.uniform(0.0, max_stagger_s, size=n_questions)
    times = np.concatenate([[0.0], np.cumsum(gaps[:-1])]) if n_questions else []
    return [float(x) for x in times]


def trec_mix_profiles(
    n_questions: int,
    seed: int = 0,
    sigma: float = 0.55,
) -> list:
    """The Section 6.1 workload: random TREC-8 + TREC-9 questions.

    Half the questions follow the TREC-8 population (~48 s sequential),
    half the TREC-9 population (~94 s) — a bimodal mix with heavy-tailed
    per-question work (``sigma`` is the lognormal spread), whose
    per-node imbalance the dynamic load balancing corrects.
    """
    from dataclasses import replace

    from ..qa.profiles import SyntheticProfileGenerator, SyntheticProfileParams

    rng = np.random.default_rng(seed)
    p9 = replace(
        SyntheticProfileParams(),
        ap_seconds_sigma=sigma,
        pr_disk_seconds_sigma=sigma * 0.8,
    )
    gen9 = SyntheticProfileGenerator(p9, seed=seed * 2 + 1)
    gen8 = SyntheticProfileGenerator(p9.scaled(48.0 / 94.0), seed=seed * 2 + 2)
    profiles = []
    for qid in range(n_questions):
        gen = gen8 if rng.random() < 0.5 else gen9
        profiles.append(gen.generate(qid))
    return profiles


def poisson_arrivals(
    n_questions: int,
    rate_per_s: float,
    seed: int = 0,
) -> list[float]:
    """Poisson arrivals (used by the ablation/extension experiments)."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=n_questions)
    return [float(x) for x in np.cumsum(gaps)]
