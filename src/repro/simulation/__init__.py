"""Discrete-event simulation substrate.

This subpackage replaces the paper's physical testbed (a network of
Pentium III machines) with a deterministic discrete-event simulator:

* :class:`~repro.simulation.engine.Environment` /
  :class:`~repro.simulation.engine.Process` — event loop and
  generator-based processes;
* :class:`~repro.simulation.resources.FairShareResource` — processor-sharing
  CPU and disk models;
* :class:`~repro.simulation.resources.MemoryResource` — memory with
  thrashing pressure;
* :class:`~repro.simulation.network.Network` — shared-medium Ethernet;
* :class:`~repro.simulation.failures.FailureInjector` — node crash/recovery.
"""

from .calendar import CalendarQueue
from .chaos import ChaosConfig, FaultInterval, generate_chaos_schedule
from .engine import EmptySchedule, Environment, Process
from .events import AllOf, AnyOf, Event, Interrupt, SimulationError, Timeout
from .failures import FailureInjector, FailureSchedule
from .network import Network, TransferFailed
from .resources import FairShareResource, Job, MemoryResource
from .schedkey import SeqHeap
from .statistics import RunningMean, TimeWeightedSignal

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "ChaosConfig",
    "EmptySchedule",
    "Environment",
    "Event",
    "FailureInjector",
    "FailureSchedule",
    "FairShareResource",
    "FaultInterval",
    "Interrupt",
    "Job",
    "MemoryResource",
    "Network",
    "Process",
    "RunningMean",
    "SeqHeap",
    "SimulationError",
    "TimeWeightedSignal",
    "Timeout",
    "TransferFailed",
    "generate_chaos_schedule",
]
