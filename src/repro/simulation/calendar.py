"""Calendar-queue event scheduler (Brown 1988): O(1) amortized push/pop.

The binary heap in :class:`~repro.simulation.schedkey.SeqHeap` costs
``O(log n)`` per operation; with 1000 simulated nodes the pending-event set
(per-node heartbeat timeouts, service completions, network wakeups) is
large enough that those comparisons dominate the event loop.  A calendar
queue spreads pending events over ``nbuckets`` "days" of width ``width``
seconds; the ring of buckets is one "year" of ``nbuckets * width``
seconds.  Push indexes the target day directly; pop scans forward from the
current day.  With the width matched to the observed inter-event gap both
are amortized O(1).

Ordering contract
-----------------
Entries are the same ``(when, prio, seq, payload)`` tuples the heap
backend builds (``seq`` from a private monotonic counter), and every
same-day tie is resolved by a per-bucket binary heap over the full tuple.
Cross-bucket order needs no tiebreak: day membership is assigned with
``int(when / width)``, and division by a positive width is monotone, so
``when_a < when_b`` implies ``day(a) <= day(b)`` — an earlier event can
never hide in a later day.

The pop fast path tests the current day's bucket head against a
precomputed boundary ``(day + 1) * width`` instead of re-dividing.  Under
IEEE rounding the multiplied bound can disagree with the division by one
ulp at the day edge, but only in the safe direction: a head passing the
bound is provably the queue minimum (every smaller event would share its
``mod nbuckets`` day and therefore its bucket, where the per-bucket heap
already ordered it first), and a head spuriously failing the bound just
falls through to the scan, whose full-lap fallback compares complete
entry tuples and always returns the true minimum.

Resize policy
-------------
The bucket count doubles (powers of two, min 8) when the pending count
exceeds ``2 * nbuckets`` on push, and shrinks lazily when a day-advance
scan observes the ring at under a quarter occupancy — the scan is the only
operation sparsity actually hurts, so that is where the check lives.  The
width is re-derived from the data at every resize as 3x the median
positive gap between adjacent pending events — the classic rule of thumb
that keeps roughly one event per day without letting a few large gaps
blow the year out.
"""

from __future__ import annotations

import itertools
import typing as t
from heapq import heappop, heappush

__all__ = ["CalendarQueue"]

_MIN_BUCKETS = 8
_INF = float("inf")

#: Ring sizing: nbuckets tracks ``size >> _SIZE_SHIFT`` (so ~2**_SIZE_SHIFT
#: events per bucket).  A handful of events per day keeps the day-advance
#: scan off the common pop path while the per-bucket heaps stay shallow.
_SIZE_SHIFT = 2
#: Bucket width as a multiple of the median positive inter-event gap.
_WIDTH_GAPS = 8.0


class CalendarQueue:
    """Bucketed priority queue with the engine's ``(when, prio, seq)`` order.

    Drop-in alternative to :class:`~repro.simulation.schedkey.SeqHeap` for
    the :class:`~repro.simulation.engine.Environment` event queue: same
    ``push(payload, when, prio)`` / ``pop()`` / ``peek_when()`` surface,
    same full-entry return values, provably identical pop order.
    """

    __slots__ = (
        "_seq",
        "_buckets",
        "_nbuckets",
        "_mask",
        "_width",
        "_abs",
        "_curb",
        "_boundary",
        "_size",
        "_inf",
        "n_resizes",
    )

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._seq = itertools.count()
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._buckets: list[list[tuple]] = [[] for _ in range(_MIN_BUCKETS)]
        self._width = float(width)
        self._size = 0
        #: Events at t=inf never expire from the ring; they live in a side
        #: heap and pop only once every finite event has fired.
        self._inf: list[tuple] = []
        self.n_resizes = 0
        self._set_day(0)

    # -- introspection -------------------------------------------------------
    @property
    def width(self) -> float:
        return self._width

    @property
    def nbuckets(self) -> int:
        return self._nbuckets

    def __len__(self) -> int:
        return self._size + len(self._inf)

    def __bool__(self) -> bool:
        return bool(self._size or self._inf)

    # -- core operations -----------------------------------------------------
    def push(self, payload: object, when: float, prio: int = 1) -> None:
        """Insert ``payload`` at time ``when`` (FIFO among equal keys)."""
        entry = (when, prio, next(self._seq), payload)
        if when == _INF:
            heappush(self._inf, entry)
            return
        day = int(when / self._width)
        size = self._size
        if size == 0 or day < self._abs:
            # Empty ring: jump straight to the event's day.  A push behind
            # the scan position (possible after a horizon peek fast-forwarded
            # past a quiet stretch) rewinds the scan so nothing is skipped.
            self._set_day(day)
        heappush(self._buckets[day & self._mask], entry)
        self._size = size + 1
        if (size >> _SIZE_SHIFT) >= (self._nbuckets << 1):
            self._resize()

    def pop(self) -> tuple:
        """Pop and return the smallest full entry ``(when, prio, seq, payload)``."""
        size = self._size
        if size == 0:
            if self._inf:
                return heappop(self._inf)
            raise IndexError("pop from empty CalendarQueue")
        bucket = self._curb
        if not bucket or bucket[0][0] >= self._boundary:
            bucket = self._scan()
        self._size = size - 1
        return heappop(bucket)

    def peek_when(self) -> float:
        """Time of the next entry (``inf`` when empty)."""
        if self._size == 0:
            return self._inf[0][0] if self._inf else _INF
        bucket = self._curb
        if not bucket or bucket[0][0] >= self._boundary:
            bucket = self._scan()
        return bucket[0][0]

    # -- internals -----------------------------------------------------------
    def _set_day(self, day: int) -> None:
        """Move the scan to ``day``, refreshing the cached bucket and bound."""
        self._abs = day
        self._curb = self._buckets[day & self._mask]
        self._boundary = (day + 1) * self._width

    def _scan(self) -> list[tuple]:
        """Walk the ring from the scan day to the bucket of the next entry.

        Only called with ``_size > 0`` after the current day missed; leaves
        the scan (``_abs``/``_curb``/``_boundary``) on the day of the
        returned bucket's head.  Sparsity (many empty buckets per pending
        event) is detected and repaired here rather than on every pop.
        """
        if self._nbuckets > _MIN_BUCKETS and (
            (self._size >> _SIZE_SHIFT) << 2
        ) < self._nbuckets:
            self._resize()
            # The rebuild re-anchored the scan on the day of the minimum
            # entry, so the cached bucket holds the head already.
            return self._curb
        width = self._width
        mask = self._mask
        buckets = self._buckets
        day = self._abs
        # Re-check the current day first: the caller's boundary test can
        # fail by one ulp for a head that division still files under today.
        for _ in range(self._nbuckets + 1):
            bucket = buckets[day & mask]
            # Membership uses the same int(when / width) as push, so the
            # scan can never skip past the day an event was filed under.
            if bucket and int(bucket[0][0] / width) == day:
                if (
                    len(bucket) >= 32
                    and (len(bucket) << 3) > self._size
                    and bucket[0][0] != bucket[-1][0]
                ):
                    # The day we are about to activate holds a big slice of
                    # the whole queue at mixed timestamps — the width is
                    # stale (e.g. still the 1.0s default after a cold
                    # start), so this bucket would degenerate into one big
                    # heap.  Recalibrate from the observed gaps.  Same-time
                    # bursts (head == tail) are exempt: no width can split
                    # them, and they drain through the fast path anyway.
                    self._resize()
                    return self._curb
                self._set_day(day)
                return bucket
            day += 1
        # Sparse year: everything pending is at least a full lap ahead.
        # Direct-search the bucket heads (full-entry compare preserves the
        # (when, prio, seq) tiebreak) and jump the scan to the winner.
        best: list[tuple] | None = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        assert best is not None  # _size > 0 guarantees a non-empty bucket
        self._set_day(int(best[0][0] / width))
        return best

    def _resize(self) -> None:
        """Rebuild the ring sized to the pending count, width from the data."""
        entries = [entry for bucket in self._buckets for entry in bucket]
        entries.sort()
        whens = [entry[0] for entry in entries]
        gaps = sorted(
            later - earlier
            for earlier, later in zip(whens, whens[1:])
            if later > earlier
        )
        width = _WIDTH_GAPS * gaps[len(gaps) // 2] if gaps else self._width
        nbuckets = _MIN_BUCKETS
        target = self._size >> _SIZE_SHIFT
        while nbuckets < target:
            nbuckets <<= 1
        self._buckets = buckets = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        self._width = width
        # Entries arrive in sorted order, so each bucket list is built
        # sorted — already a valid heap, no heapify pass needed.
        for entry in entries:
            buckets[int(entry[0] / width) & mask].append(entry)
        self._set_day(int(whens[0] / width) if whens else 0)
        self.n_resizes += 1
