"""Deterministic discrete-event simulation engine.

This module provides :class:`Environment` (the event loop) and
:class:`Process` (a generator-based simulation process).  Together with the
resource models in :mod:`repro.simulation.resources` and the network model in
:mod:`repro.simulation.network`, it forms the substrate on which the
distributed Q/A cluster of the paper is reproduced.

Design notes
------------
* The event queue orders events by ``(time, priority, seq)``.  ``seq`` is a
  monotonically increasing counter, so simulations are fully deterministic —
  two events scheduled for the same instant fire in the order they were
  scheduled.  Two backends implement that contract behind the same API:
  a binary heap (:class:`~repro.simulation.schedkey.SeqHeap`, the default)
  and a calendar queue (:class:`~repro.simulation.calendar.CalendarQueue`,
  O(1) amortized — pick it with ``Environment(queue="calendar")`` for
  large-N runs).  Firing order is identical between the two; the simbench
  equivalence gate replays a seeded run under both and diffs the full log.
* Processes are plain Python generators.  ``yield event`` suspends the
  process until the event fires; the event's value is returned by the
  ``yield`` expression (or its exception raised).
* A process is itself an :class:`~repro.simulation.events.Event` that fires
  when the generator returns, enabling fork/join patterns
  (``yield env.all_of([env.process(worker(i)) for i in ...])``) — the same
  pattern the paper's sender-controlled distribution loop (Fig 5c) uses with
  one monitoring thread per worker.
"""

from __future__ import annotations

import heapq
import typing as t

from .calendar import CalendarQueue
from .schedkey import SeqHeap
from .events import (
    _PENDING,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)

__all__ = ["Environment", "Process", "EmptySchedule"]

#: Default priority for scheduled events; urgent (interrupt) events use 0.
_NORMAL = 1
_URGENT = 0


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Process(Event):
    """A running simulation process wrapping a generator.

    The process event fires when the generator finishes; its value is the
    generator's return value.  If the generator raises, the process event
    fails with that exception (propagating to any process waiting on it)
    unless nobody waits, in which case the exception surfaces out of
    :meth:`Environment.run` to avoid silently swallowed bugs.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(
        self,
        env: "Environment",
        generator: t.Generator[Event, object, object],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick-start on the next queue iteration at the current time.
        # The bootstrap hub is anonymous: per-process f-string labels are
        # measurable overhead and the process itself carries the name.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)  # type: ignore[union-attr]
        bootstrap._ok = True
        bootstrap._value = None
        env._schedule(bootstrap, delay=0.0, priority=_URGENT)

    # -- public API ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        hub = Event(self.env)
        hub._ok = False
        hub._value = Interrupt(cause)
        hub.callbacks.append(self._resume)  # type: ignore[union-attr]
        self.env._schedule(hub, delay=0.0, priority=_URGENT)

    # -- engine internals -----------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger event's outcome."""
        if not self.is_alive:
            return  # e.g. interrupted after normal completion scheduling
        # Detach from the event we were waiting on (interrupt case).
        waiting = self._waiting_on
        if waiting is not None and waiting is not trigger:
            if waiting.callbacks is not None:
                try:
                    waiting.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._waiting_on = None

        self.env._active_process = self
        try:
            if trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                exc = t.cast(BaseException, trigger.value)
                target = self._generator.throw(exc)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            if self.callbacks:
                self.fail(exc)
                return
            # Nobody is listening: crash the simulation loudly.
            self._ok = False
            self._value = exc
            self.env._schedule(self, delay=0.0)
            self.env._crashed = (self, exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another environment")
        if target.callbacks is None:
            # Already processed: resume immediately (same timestamp).
            hub = Event(self.env)
            hub._ok = target._ok
            hub._value = target._value
            hub.callbacks.append(self._resume)  # type: ignore[union-attr]
            self.env._schedule(hub, delay=0.0, priority=_URGENT)
            self._waiting_on = hub
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Environment:
    """The simulation clock and event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    queue:
        Event-queue backend: ``"heap"`` (binary heap, the default) or
        ``"calendar"`` (calendar queue, O(1) amortized — faster for the
        large pending-event sets of 256+-node runs).  Firing order is
        identical between the two.
    """

    __slots__ = ("_now", "_queue", "_is_calendar", "_active_process", "_crashed")

    def __init__(self, initial_time: float = 0.0, queue: str = "heap") -> None:
        self._now = float(initial_time)
        if queue == "heap":
            self._queue: SeqHeap | CalendarQueue = SeqHeap()
            self._is_calendar = False
        elif queue == "calendar":
            self._queue = CalendarQueue()
            self._is_calendar = True
        else:
            raise ValueError(f"unknown queue backend: {queue!r}")
        self._active_process: Process | None = None
        self._crashed: tuple[Process, BaseException] | None = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def queue_impl(self) -> str:
        """Name of the active event-queue backend."""
        return "calendar" if self._is_calendar else "heap"

    @property
    def _seq(self):
        """The queue's event counter (``next()`` count == events scheduled)."""
        return self._queue._seq

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- event construction ---------------------------------------------------
    def event(self, name: str | None = None) -> Event:
        """Create a new pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: t.Generator[Event, object, object],
        name: str | None = None,
    ) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: t.Sequence[Event]) -> AllOf:
        """Event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: t.Sequence[Event]) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling / running ---------------------------------------------------
    def _schedule(
        self, event: Event, delay: float, priority: int = _NORMAL
    ) -> None:
        # Both backends share the push(payload, when, prio) surface and the
        # SeqHeap (when, prio, seq, payload) entry layout.  The heap push is
        # inlined — one C call on the hottest path in the simulator — while
        # the calendar's bucket logic stays behind its method.
        q = self._queue
        if self._is_calendar:
            q.push(event, self._now + delay, priority)
        else:
            heapq.heappush(
                q.entries, (self._now + delay, priority, next(q._seq), event)
            )

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when queue is empty)."""
        return self._queue.peek_when()

    def step(self) -> None:
        """Process exactly one event."""
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        when, _prio, _seq, event = queue.pop()
        self._now = when
        event._run_callbacks()
        if self._crashed is not None:
            proc, exc = self._crashed
            self._crashed = None
            raise exc

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (raising its exception if it failed).

        All three loops are inlined fast paths over the same pop/clock/
        callback sequence as :meth:`step`; event firing order is
        identical to stepping manually.
        """
        if self._is_calendar:
            return self._run_calendar(until)
        queue = self._queue.entries
        heappop = heapq.heappop
        if until is None:
            while queue:
                when, _prio, _seq, event = heappop(queue)
                self._now = when
                event._run_callbacks()
                if self._crashed is not None:
                    proc, exc = self._crashed
                    self._crashed = None
                    raise exc
            return None

        if isinstance(until, Event):
            target = until
            sentinel: list[object] = []

            def _done(evt: Event) -> None:
                sentinel.append(evt)

            if target.callbacks is None:
                sentinel.append(target)
            else:
                target.callbacks.append(_done)
            while not sentinel:
                if not queue:
                    raise SimulationError(
                        f"simulation ran out of events before {target!r} fired"
                    )
                when, _prio, _seq, event = heappop(queue)
                self._now = when
                event._run_callbacks()
                if self._crashed is not None:
                    proc, exc = self._crashed
                    self._crashed = None
                    raise exc
            if not target.ok:
                raise t.cast(BaseException, target._value)
            return target.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run backwards to t={horizon} (now={self._now})")
        while queue and queue[0][0] <= horizon:
            when, _prio, _seq, event = heappop(queue)
            self._now = when
            event._run_callbacks()
            if self._crashed is not None:
                proc, exc = self._crashed
                self._crashed = None
                raise exc
        self._now = horizon
        return None

    def _run_calendar(self, until: float | Event | None) -> object:
        """The :meth:`run` loops for the calendar backend.

        Same pop/clock/callback sequence, but with the calendar's pop fast
        path (current-day bucket head under the day boundary) inlined so the
        common case is one C ``heappop`` plus a couple of slot loads — the
        same treatment the heap loops above get.  Callbacks may push (and
        trigger a bucket resize) mid-drain, so the queue's fields are
        re-read every iteration rather than cached across callbacks.
        """
        queue = self._queue
        heappop = heapq.heappop
        if until is None:
            while True:
                size = queue._size
                if size == 0:
                    if not queue._inf:
                        return None
                    when, _prio, _seq, event = heappop(queue._inf)
                else:
                    bucket = queue._curb
                    if not bucket or bucket[0][0] >= queue._boundary:
                        bucket = queue._scan()
                    queue._size = size - 1
                    when, _prio, _seq, event = heappop(bucket)
                self._now = when
                event._run_callbacks()
                if self._crashed is not None:
                    proc, exc = self._crashed
                    self._crashed = None
                    raise exc

        if isinstance(until, Event):
            target = until
            sentinel: list[object] = []

            def _done(evt: Event) -> None:
                sentinel.append(evt)

            if target.callbacks is None:
                sentinel.append(target)
            else:
                target.callbacks.append(_done)
            while not sentinel:
                size = queue._size
                if size == 0:
                    if not queue._inf:
                        raise SimulationError(
                            f"simulation ran out of events before {target!r} fired"
                        )
                    when, _prio, _seq, event = heappop(queue._inf)
                else:
                    bucket = queue._curb
                    if not bucket or bucket[0][0] >= queue._boundary:
                        bucket = queue._scan()
                    queue._size = size - 1
                    when, _prio, _seq, event = heappop(bucket)
                self._now = when
                event._run_callbacks()
                if self._crashed is not None:
                    proc, exc = self._crashed
                    self._crashed = None
                    raise exc
            if not target.ok:
                raise t.cast(BaseException, target._value)
            return target.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run backwards to t={horizon} (now={self._now})")
        while True:
            size = queue._size
            if size == 0:
                if not queue._inf or queue._inf[0][0] > horizon:
                    break
                when, _prio, _seq, event = heappop(queue._inf)
            else:
                bucket = queue._curb
                if not bucket or bucket[0][0] >= queue._boundary:
                    bucket = queue._scan()
                if bucket[0][0] > horizon:
                    break
                queue._size = size - 1
                when, _prio, _seq, event = heappop(bucket)
            self._now = when
            event._run_callbacks()
            if self._crashed is not None:
                proc, exc = self._crashed
                self._crashed = None
                raise exc
        self._now = horizon
        return None
