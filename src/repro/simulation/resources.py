"""Fair-share resource models: CPU, disk, and memory.

The paper's cluster nodes contend for three resources (Section 2.2): the
CPU (answer processing is CPU-bound), the disk (paragraph retrieval is
I/O-bound), and dynamic memory (more than four simultaneous questions cause
page thrashing).  We model CPU and disk as *egalitarian processor-sharing*
servers: a resource with capacity ``C`` units/second serves its ``n``
active jobs at ``C·w_i/Σw`` each.  This is the standard fluid model of a
time-sliced CPU or a disk shared by concurrent streams, and it is what
makes the paper's contention effects (e.g. four simultaneous PR phases
quartering each other's disk bandwidth) emerge rather than being scripted.

The implementation uses the classic *virtual time* technique from
generalized processor sharing: virtual time advances at rate ``C/Σw``, a
job with demand ``D`` and weight ``w`` finishes when virtual time has
advanced by ``D/w`` since its arrival.  Membership changes and capacity
changes are O(log n).
"""

from __future__ import annotations

import typing as t

from .engine import Environment
from .events import Event, SimulationError
from .schedkey import SeqHeap
from .statistics import TimeWeightedSignal

__all__ = ["FairShareResource", "Job", "MemoryResource"]


class Job:
    """Handle for one in-flight demand on a :class:`FairShareResource`."""

    __slots__ = ("event", "demand", "weight", "_target_v", "_cancelled", "tag")

    def __init__(self, event: Event, demand: float, weight: float, tag: object) -> None:
        self.event = event
        self.demand = demand
        self.weight = weight
        self._target_v = 0.0
        self._cancelled = False
        self.tag = tag

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class FairShareResource:
    """An egalitarian (weighted) processor-sharing server.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Service rate in units/second (e.g. CPU-seconds/second == 1.0 for a
        reference CPU, or bytes/second for a disk).
    name:
        Diagnostic label.
    """

    def __init__(self, env: Environment, capacity: float, name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self._capacity = float(capacity)
        self._jobs: set[Job] = set()
        #: Completion order: (target_v, seq, job) via the shared tiebreak.
        self._sched = SeqHeap()
        self._vtime = 0.0
        self._t_last = env.now
        self._weight_sum = 0.0
        self._wakeup: Event | None = None
        #: Number of active jobs over time — feeds load metrics.
        self.active_jobs = TimeWeightedSignal(0.0, env.now)
        #: Busy (≥1 job) indicator over time — feeds utilisation metrics.
        self.busy = TimeWeightedSignal(0.0, env.now)
        #: Total demand completed, for accounting.
        self.completed_units = 0.0
        #: Service already delivered to jobs that were later cancelled —
        #: without this the books would leak a cancelled job's progress.
        self.cancelled_units = 0.0

    # -- public API ----------------------------------------------------------
    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def n_active(self) -> int:
        return len(self._jobs)

    def set_capacity(self, capacity: float) -> None:
        """Change the service rate (e.g. memory-thrash slowdown).

        In-flight jobs keep their already-received service; remaining work
        proceeds at the new rate.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._advance()
        self._capacity = float(capacity)
        self._reschedule()

    def use(self, demand: float, weight: float = 1.0, tag: object = None) -> Job:
        """Submit a demand; the returned job's ``event`` fires on completion.

        A zero demand completes immediately (still passing through the event
        queue, so ordering stays deterministic).
        """
        if demand < 0:
            raise ValueError(f"negative demand: {demand}")
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        # Anonymous completion event: this is the engine's hottest event
        # constructor after Timeout, and a per-use f-string label costs
        # more than the heap push that schedules it.
        event = Event(self.env)
        job = Job(event, float(demand), float(weight), tag)
        if demand == 0.0:
            event.succeed(0.0)
            return job
        self._advance()
        job._target_v = self._vtime + demand / weight
        self._jobs.add(job)
        self._weight_sum += weight
        self._sched.push(job, job._target_v)
        now = self.env.now
        self.active_jobs.add(now, 1.0)
        if len(self._jobs) == 1:
            self.busy.set(now, 1.0)
        self._reschedule()
        return job

    def cancel(self, job: Job) -> float:
        """Abort an in-flight job, returning its unserved demand.

        The job's event is *not* triggered.  Cancelling a finished or
        already-cancelled job returns 0.
        """
        if job.cancelled or job.done or job not in self._jobs:
            return 0.0
        self._advance()
        remaining = max(0.0, (job._target_v - self._vtime) * job.weight)
        self.cancelled_units += job.demand - remaining
        job._cancelled = True
        self._remove(job)
        self._reschedule()
        return remaining

    def utilization(self, checkpoint: tuple[float, float]) -> float:
        """Fraction of time busy since a ``busy.checkpoint()`` snapshot."""
        return self.busy.average(checkpoint, self.env.now)

    # -- internals -------------------------------------------------------------
    def _advance(self) -> None:
        now = self.env.now
        if self._weight_sum > 0:
            self._vtime += (now - self._t_last) * self._capacity / self._weight_sum
        self._t_last = now

    def _remove(self, job: Job) -> None:
        self._jobs.discard(job)
        self._weight_sum -= job.weight
        if self._weight_sum < 1e-12:
            self._weight_sum = 0.0 if not self._jobs else sum(
                j.weight for j in self._jobs
            )
        now = self.env.now
        self.active_jobs.add(now, -1.0)
        if not self._jobs:
            self.busy.set(now, 0.0)

    def _reschedule(self) -> None:
        """(Re)arm the completion timer for the earliest-finishing job."""
        # A superseded timer is detected in _on_wakeup by identity check;
        # simply forgetting it here is enough.
        self._wakeup = None
        # Drop cancelled/stale heap entries.
        sched = self._sched
        entries = sched.entries
        while entries and (entries[0][-1].cancelled or entries[0][-1].done):
            sched.pop()
        if not entries:
            return
        target_v = entries[0][0]
        dt = max(0.0, (target_v - self._vtime) * self._weight_sum / self._capacity)
        wakeup = self.env.timeout(dt)
        self._wakeup = wakeup
        wakeup.callbacks.append(self._on_wakeup)  # type: ignore[union-attr]

    def _on_wakeup(self, evt: Event) -> None:
        if self._wakeup is not evt:
            return  # stale timer superseded by a membership change
        self._wakeup = None
        self._advance()
        # Complete every job whose virtual target has been reached (ties
        # complete together, e.g. equal demands started together).
        eps = 1e-9 * max(1.0, abs(self._vtime))
        sched = self._sched
        entries = sched.entries
        while entries and (
            entries[0][-1].cancelled
            or entries[0][-1].done
            or entries[0][0] <= self._vtime + eps
        ):
            job = sched.pop()[-1]
            if job.cancelled or job.done:
                continue
            self._remove(job)
            self.completed_units += job.demand
            job.event.succeed(job.demand)
        self._reschedule()


class MemoryResource:
    """A counting resource with overcommit tracking.

    Memory differs from CPU/disk: allocation is instantaneous, but *over*-
    allocating (beyond physical capacity) degrades the node — the paper
    observes "excessive page swapping caused by the lack of dynamic memory"
    at >4 simultaneous questions on 256 MB nodes.  A registered pressure
    callback lets the owning node translate overcommit into a CPU slowdown.
    """

    def __init__(
        self,
        env: Environment,
        capacity_bytes: float,
        name: str = "memory",
        on_pressure_change: t.Callable[[float], None] | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        self.env = env
        self.name = name
        self.capacity = float(capacity_bytes)
        self.allocated = 0.0
        self.peak = 0.0
        self._on_pressure_change = on_pressure_change
        self.level = TimeWeightedSignal(0.0, env.now)

    @property
    def overcommit(self) -> float:
        """Allocation beyond physical capacity, as a fraction of capacity."""
        return max(0.0, self.allocated - self.capacity) / self.capacity

    def allocate(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self.allocated += nbytes
        self.peak = max(self.peak, self.allocated)
        self.level.set(self.env.now, self.allocated)
        if self._on_pressure_change is not None:
            self._on_pressure_change(self.overcommit)

    def release(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"negative release: {nbytes}")
        if nbytes > self.allocated + 1e-6:
            raise SimulationError(
                f"{self.name}: releasing {nbytes} > allocated {self.allocated}"
            )
        self.allocated = max(0.0, self.allocated - nbytes)
        self.level.set(self.env.now, self.allocated)
        if self._on_pressure_change is not None:
            self._on_pressure_change(self.overcommit)
