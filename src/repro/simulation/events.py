"""Event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style (as popularised by
SimPy): simulation *processes* are Python generators that ``yield`` event
objects; the engine resumes the generator when the yielded event fires.

Only the primitives actually needed by the distributed Q/A simulation are
implemented: plain one-shot events, timeouts, process-completion events and
AND/OR condition composites.  Everything is deterministic: events scheduled
at the same timestamp fire in scheduling order (a monotonically increasing
sequence number breaks ties), which keeps whole simulations reproducible
from a seed.
"""

from __future__ import annotations

import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .engine import Environment

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]

#: Sentinel for "event has not produced a value yet".
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, etc.)."""


class Interrupt(Exception):
    """Thrown *into* a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event begins *pending*; it is *triggered* once :meth:`succeed` or
    :meth:`fail` is called, which schedules it onto the environment's queue;
    when the queue pops it, it is *processed* and its callbacks run.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "name")

    def __init__(self, env: "Environment", name: str | None = None) -> None:
        self.env = env
        #: Callables invoked with the event once it is processed.
        self.callbacks: list[t.Callable[[Event], None]] | None = []
        self._value: object = _PENDING
        self._ok: bool = True
        self._processed = False
        self.name = name

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=0.0)
        return self

    # -- internal ----------------------------------------------------------
    def _run_callbacks(self) -> None:
        """Invoke and clear the callback list (engine-internal)."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{label} {state} at t={self.env.now:.6g}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are the engine's hottest allocation: one per simulated
    delay, resource completion, and monitor round.  The constructor is
    therefore kept lean — in particular the diagnostic name is *lazy*
    (``name`` stays ``None`` unless a caller passes one); formatting a
    per-event label costs more than the rest of the scheduling combined.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        env: "Environment",
        delay: float,
        value: object = None,
        name: str | None = None,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._processed = False
        self.name = name
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else "triggered"
        return f"<{self.name or f'Timeout({self.delay:.6g})'} {state}>"


class _Condition(Event):
    """Base for AND/OR composition of events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: t.Sequence[Event]) -> None:
        super().__init__(env, name=self.__class__.__name__)
        self.events = tuple(events)
        self._n_fired = 0
        if any(e.env is not env for e in self.events):
            raise ValueError("all events must belong to the same environment")
        if not self.events:
            # An empty condition is trivially satisfied.
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, object]:
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(t.cast(BaseException, event.value))
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once *all* component events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires once *any* component event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1
