"""Time-weighted statistics helpers for the simulation substrate.

The paper's load-balancing heuristics consume *loads* — time-averaged
resource occupancies reported by each node's load monitor (Section 3.1).
:class:`TimeWeightedSignal` records a piecewise-constant signal (e.g. the
number of active jobs on a CPU) and answers windowed averages without
storing the full history: each observer keeps an independent checkpoint of
the running integral.
"""

from __future__ import annotations

__all__ = ["TimeWeightedSignal", "RunningMean"]


class TimeWeightedSignal:
    """A piecewise-constant signal with O(1) windowed-average queries.

    The signal is advanced by calling :meth:`set` (or :meth:`add`) whenever
    its value changes.  The running time-integral is maintained
    incrementally; :meth:`average` returns the mean value over an arbitrary
    past window by comparing against a caller-kept checkpoint.
    """

    __slots__ = ("_value", "_t_last", "_integral")

    def __init__(self, initial: float = 0.0, t0: float = 0.0) -> None:
        self._value = float(initial)
        self._t_last = float(t0)
        self._integral = 0.0

    @property
    def value(self) -> float:
        """Current instantaneous value."""
        return self._value

    def _advance(self, now: float) -> None:
        if now < self._t_last:
            raise ValueError(
                f"time went backwards: {now} < {self._t_last}"
            )
        self._integral += self._value * (now - self._t_last)
        self._t_last = now

    def set(self, now: float, value: float) -> None:
        """Record that the signal takes ``value`` from time ``now`` on."""
        self._advance(now)
        self._value = float(value)

    def add(self, now: float, delta: float) -> None:
        """Increment the signal by ``delta`` at time ``now``."""
        self.set(now, self._value + delta)

    def integral(self, now: float) -> float:
        """Integral of the signal from t0 up to ``now``."""
        return self._integral + self._value * (now - self._t_last)

    def checkpoint(self, now: float) -> tuple[float, float]:
        """Snapshot ``(now, integral)`` for later use with :meth:`average`."""
        return (now, self.integral(now))

    def average(self, checkpoint: tuple[float, float], now: float) -> float:
        """Mean signal value between ``checkpoint`` time and ``now``.

        Returns the instantaneous value when the window is empty.
        """
        t0, i0 = checkpoint
        if now <= t0:
            return self._value
        return (self.integral(now) - i0) / (now - t0)


class RunningMean:
    """Numerically stable streaming mean/variance (Welford's algorithm)."""

    __slots__ = ("n", "_mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two observations)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return self.variance**0.5

    def __len__(self) -> int:
        return self.n
