"""Failure injection for the simulated cluster.

The paper's partitioning algorithms (Section 4.1) carry explicit recovery
strategies: the sender-controlled loop (Fig 5c) rebuilds a task from
unprocessed partitions; the receiver-controlled loop (Fig 6b) returns a
failed worker's chunk to the available set.  To test those paths we need a
way to kill a node at a chosen moment (or according to a random schedule)
and, optionally, bring it back — exercising the dynamic join/leave
membership the design requires ("processors must be able to dynamically
join or leave the system pool", Section 3).
"""

from __future__ import annotations

import typing as t

from .engine import Environment
from .events import Event

__all__ = ["FailureInjector", "FailureSchedule"]


class FailureSchedule:
    """A list of (time, node_id, up?) transitions."""

    def __init__(self) -> None:
        self.transitions: list[tuple[float, object, bool]] = []

    def kill_at(self, time: float, node_id: object) -> "FailureSchedule":
        self.transitions.append((time, node_id, False))
        return self

    def recover_at(self, time: float, node_id: object) -> "FailureSchedule":
        self.transitions.append((time, node_id, True))
        return self

    def sorted(self) -> list[tuple[float, object, bool]]:
        return sorted(self.transitions, key=lambda x: x[0])

    def merge(self, other: "FailureSchedule") -> "FailureSchedule":
        """Append another schedule's transitions (returns ``self``)."""
        self.transitions.extend(other.transitions)
        return self

    def node_ids(self) -> set[object]:
        """Every node mentioned by the schedule."""
        return {nid for _, nid, _ in self.transitions}

    def __len__(self) -> int:
        return len(self.transitions)


class FailureInjector:
    """Drives node up/down transitions during a simulation.

    The injector talks to two hooks: the network's reachability map and an
    optional per-node callback (used by the cluster node to abort its
    in-flight resource jobs, mimicking a machine power-off).
    """

    def __init__(
        self,
        env: Environment,
        set_node_up: t.Callable[[object, bool], None],
        on_transition: t.Callable[[object, bool], None] | None = None,
    ) -> None:
        self.env = env
        self._set_node_up = set_node_up
        self._on_transition = on_transition
        self.log: list[tuple[float, object, bool]] = []

    def apply(self, schedule: FailureSchedule) -> None:
        """Spawn a process executing the schedule."""
        self.env.process(self._run(schedule), name="failure-injector")

    def kill_now(self, node_id: object) -> None:
        self._transition(node_id, up=False)

    def recover_now(self, node_id: object) -> None:
        self._transition(node_id, up=True)

    def _transition(self, node_id: object, up: bool) -> None:
        self._set_node_up(node_id, up)
        if self._on_transition is not None:
            self._on_transition(node_id, up)
        self.log.append((self.env.now, node_id, up))

    def _run(
        self, schedule: FailureSchedule
    ) -> t.Generator[Event, object, None]:
        for when, node_id, up in schedule.sorted():
            if when > self.env.now:
                yield self.env.timeout(when - self.env.now)
            self._transition(node_id, up)
