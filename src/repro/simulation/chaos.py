"""Randomized failure-schedule generation (chaos campaigns).

The hand-written schedules in :mod:`repro.experiments.robustness_exp`
exercise single, well-separated outages.  The paper's design claims more:
all three partitioning strategies recover from processors leaving *and
rejoining* mid-task (Fig 5c, Fig 6b), and membership is fully dynamic
("processors must be able to dynamically join or leave the system pool",
Section 3).  To probe that claim systematically, this module generates
*seeded randomized* :class:`~repro.simulation.failures.FailureSchedule`\\ s
mixing four fault archetypes:

* **crash/recover storms** — independent per-node crashes at a Poisson
  rate, each followed by an exponentially distributed downtime;
* **correlated failures** — several nodes lost at the same instant (a
  switch port group, a power rail);
* **flapping nodes** — rapid down/up cycles, the worst case for the
  membership timeout;
* **permanent deaths** — a node leaves and never returns.

Schedules are pure data: generation uses only a private
``random.Random(seed)``, so a seed fully reproduces a campaign.  A
``min_live_nodes`` floor is enforced by construction — fault intervals
that would drop the live population below the floor are discarded
deterministically, keeping every generated scenario survivable by design
(total-cluster death is tested separately, not randomly).
"""

from __future__ import annotations

import math
import random
import typing as t
from dataclasses import dataclass

from .failures import FailureSchedule

__all__ = ["ChaosConfig", "FaultInterval", "generate_chaos_schedule"]


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Knobs for one randomized failure campaign.

    ``crash_rate`` is the expected number of crashes per node per second;
    the fault-rate sweep of the chaos campaign scales exactly this knob.
    """

    seed: int = 0
    #: Faults are generated inside [start_s, horizon_s).
    horizon_s: float = 600.0
    start_s: float = 5.0
    #: Expected crashes per node-second (Poisson process per node).
    crash_rate: float = 1.0 / 200.0
    #: Mean downtime of an ordinary crash (exponential).
    mean_downtime_s: float = 40.0
    #: Downtime is clamped to at least this (a reboot is never instant).
    min_downtime_s: float = 2.0
    #: Probability that a crash takes a correlated group down with it.
    correlated_prob: float = 0.15
    #: Further nodes (beyond the crashing one) lost in a correlated event.
    correlated_extra: int = 1
    #: Probability that a crash is the start of a flapping episode.
    flap_prob: float = 0.15
    #: Down/up cycles in one flapping episode.
    flap_cycles: int = 3
    #: Length of each flap down- and up-phase.
    flap_period_s: float = 3.0
    #: Probability that a crash is permanent (the node never recovers).
    permanent_prob: float = 0.1
    #: Never let the live population fall below this.
    min_live_nodes: int = 1

    def __post_init__(self) -> None:
        if self.horizon_s <= self.start_s:
            raise ValueError("horizon_s must exceed start_s")
        if self.crash_rate < 0:
            raise ValueError("crash_rate must be non-negative")
        if self.min_live_nodes < 1:
            raise ValueError("min_live_nodes must be >= 1")
        for name in ("correlated_prob", "flap_prob", "permanent_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


@dataclass(frozen=True, slots=True)
class FaultInterval:
    """One node-down interval; ``end`` is ``inf`` for permanent deaths."""

    node_id: int
    start: float
    end: float

    @property
    def permanent(self) -> bool:
        return math.isinf(self.end)


def generate_chaos_schedule(
    config: ChaosConfig, n_nodes: int
) -> FailureSchedule:
    """Generate a seeded randomized schedule for an ``n_nodes`` cluster."""
    intervals = generate_fault_intervals(config, n_nodes)
    schedule = FailureSchedule()
    for iv in intervals:
        schedule.kill_at(iv.start, iv.node_id)
        if not iv.permanent:
            schedule.recover_at(iv.end, iv.node_id)
    return schedule


def generate_fault_intervals(
    config: ChaosConfig, n_nodes: int
) -> list[FaultInterval]:
    """The schedule as non-overlapping per-node down intervals.

    Exposed separately so tests (and reports) can assert invariants on
    the interval form directly.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    rng = random.Random(config.seed)
    raw: list[FaultInterval] = []
    for nid in range(n_nodes):
        raw.extend(_node_intervals(config, rng, nid, n_nodes))
    raw.sort(key=lambda iv: (iv.start, iv.node_id, iv.end))
    merged = _merge_per_node(raw)
    return _enforce_min_live(merged, n_nodes, config.min_live_nodes)


def _node_intervals(
    config: ChaosConfig, rng: random.Random, nid: int, n_nodes: int
) -> t.Iterator[FaultInterval]:
    """One node's Poisson crash process, expanded into down intervals.

    Correlated events drag ``correlated_extra`` randomly chosen peers
    down for the same interval; flapping expands one crash into several
    short cycles.  All intervals are clipped to the horizon.
    """
    if config.crash_rate <= 0:
        return
    now = config.start_s + rng.expovariate(config.crash_rate)
    while now < config.horizon_s:
        kind = rng.random()
        if kind < config.permanent_prob:
            yield FaultInterval(nid, now, math.inf)
            return
        if kind < config.permanent_prob + config.flap_prob:
            start = now
            for _ in range(config.flap_cycles):
                end = min(start + config.flap_period_s, config.horizon_s)
                yield FaultInterval(nid, start, end)
                start = end + config.flap_period_s
                if start >= config.horizon_s:
                    break
            now = start
        else:
            downtime = max(
                config.min_downtime_s,
                rng.expovariate(1.0 / config.mean_downtime_s),
            )
            end = now + downtime
            yield FaultInterval(nid, now, end)
            if rng.random() < config.correlated_prob and n_nodes > 1:
                peers = [k for k in range(n_nodes) if k != nid]
                for peer in rng.sample(
                    peers, min(config.correlated_extra, len(peers))
                ):
                    yield FaultInterval(peer, now, end)
            now = end
        now += rng.expovariate(config.crash_rate)


def _merge_per_node(intervals: list[FaultInterval]) -> list[FaultInterval]:
    """Coalesce overlapping down intervals of the same node."""
    by_node: dict[int, list[FaultInterval]] = {}
    for iv in intervals:
        by_node.setdefault(iv.node_id, []).append(iv)
    merged: list[FaultInterval] = []
    for nid, ivs in by_node.items():
        ivs.sort(key=lambda iv: (iv.start, iv.end))
        current = ivs[0]
        for iv in ivs[1:]:
            if iv.start <= current.end:
                current = FaultInterval(
                    nid, current.start, max(current.end, iv.end)
                )
            else:
                merged.append(current)
                current = iv
        merged.append(current)
    merged.sort(key=lambda iv: (iv.start, iv.node_id))
    return merged


def _enforce_min_live(
    intervals: list[FaultInterval], n_nodes: int, min_live: int
) -> list[FaultInterval]:
    """Drop intervals that would leave fewer than ``min_live`` nodes up.

    A sweep in start order keeps a conservative count of concurrently
    down nodes; any interval whose admission would exceed the budget is
    discarded whole (its recovery included), so the surviving schedule is
    survivable at every instant.
    """
    budget = n_nodes - min_live
    if budget <= 0:
        return []
    admitted: list[FaultInterval] = []
    for iv in intervals:
        overlapping = sum(
            1
            for other in admitted
            if other.start <= iv.start < other.end
            or iv.start <= other.start < iv.end
        )
        if overlapping < budget:
            admitted.append(iv)
    return admitted
