"""Shared scheduling-key helper: the ``(*key, seq, payload)`` tiebreak.

Every priority queue in the simulator orders entries by a numeric key with
a monotonically increasing sequence number appended as the tiebreak, so

* entries with equal keys pop in insertion order (FIFO), and
* the payload object itself is never compared (events and jobs do not
  define ``__lt__``).

Historically the event queue in :mod:`repro.simulation.engine` and the
fair-share completion heap in :mod:`repro.simulation.resources` each
open-coded this idiom with their own ``itertools.count``.  :class:`SeqHeap`
is now the single owner of the entry layout; the calendar backend in
:mod:`repro.simulation.calendar` builds the identical ``(*key, seq,
payload)`` tuples so both event-queue backends share one ordering
semantics (which is what makes their firing order provably identical).
"""

from __future__ import annotations

import heapq
import itertools
import typing as t

__all__ = ["SeqHeap"]


class SeqHeap:
    """A binary heap of ``(*key, seq, payload)`` entries.

    ``entries`` is a public ``heapq`` list so hot loops (the engine's
    inlined :meth:`~repro.simulation.engine.Environment.run` drains, the
    resource stale-entry sweeps) can read the head without a call; the
    entry layout — key fields first, then ``seq``, then the payload last —
    is the contract those loops rely on.
    """

    __slots__ = ("entries", "_seq")

    def __init__(self) -> None:
        self.entries: list[tuple] = []
        self._seq = itertools.count()

    def push(self, payload: object, *key: t.Any) -> None:
        """Insert ``payload`` ordered by ``key`` (FIFO among equal keys)."""
        heapq.heappush(self.entries, key + (next(self._seq), payload))

    def pop(self) -> tuple:
        """Pop and return the smallest full entry ``(*key, seq, payload)``."""
        return heapq.heappop(self.entries)

    def peek_when(self) -> float:
        """First key field of the head entry (``inf`` when empty)."""
        entries = self.entries
        return entries[0][0] if entries else float("inf")

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)
