"""Shared-medium interconnection network model.

The paper's testbed is a *star-configuration 100 Mbps Ethernet* — a shared
medium where all concurrent transfers contend for the same bandwidth.  The
analytical model (Section 5) assumes exactly this: with ``N`` simultaneous
broadcasters the per-node bandwidth is ``B/N``.

We model the medium as one :class:`FairShareResource` with capacity equal
to the nominal bandwidth in **bytes/second**.  A message additionally pays:

* a fixed *latency* (propagation + protocol stack), and
* an optional *connection setup* cost — the paper's RECV partitioning
  strategy pays one TCP connection per chunk, which is what makes very
  small chunks unprofitable (Fig 10).

Broadcasts occupy the medium once (a hub repeats the frame to every port),
matching the analytical model's ``S_load·N/B`` total monitoring traffic —
the N factor comes from N nodes each broadcasting, not from N copies.
"""

from __future__ import annotations

import typing as t

from .engine import Environment
from .events import Event
from .resources import FairShareResource, Job

__all__ = ["Network", "TransferFailed"]


class TransferFailed(Exception):
    """Raised inside a waiting process when a transfer is aborted.

    The paper detects worker failure "through TCP error messages"
    (Section 4.1.1); this exception is the simulated equivalent.
    """

    def __init__(self, src: object, dst: object, nbytes: float, reason: str) -> None:
        super().__init__(f"transfer {src}->{dst} ({nbytes:.0f} B) failed: {reason}")
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.reason = reason


class Network:
    """A shared-bandwidth interconnection network.

    Parameters
    ----------
    env:
        Simulation environment.
    bandwidth_bps:
        Nominal bandwidth in *bits* per second (networks are quoted in
        bits; 100 Mbps Ethernet => ``100e6``).
    latency_s:
        One-way per-message latency in seconds.
    connection_setup_s:
        Extra latency charged when ``new_connection=True`` (TCP handshake).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = 100e6,
        latency_s: float = 0.2e-3,
        connection_setup_s: float = 1.5e-3,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.connection_setup_s = float(connection_setup_s)
        self.medium = FairShareResource(
            env, capacity=bandwidth_bps / 8.0, name="network"
        )
        #: Set of node ids currently reachable; transfers to/from a dead
        #: node fail.  Nodes are considered up unless explicitly marked.
        self._down: set[object] = set()
        # Accounting
        self.bytes_transferred = 0.0
        self.messages_sent = 0
        self.broadcasts_sent = 0

    # -- failure control -------------------------------------------------------
    def set_node_up(self, node_id: object, up: bool) -> None:
        """Mark a node as reachable/unreachable on the network."""
        if up:
            self._down.discard(node_id)
        else:
            self._down.add(node_id)

    def is_up(self, node_id: object) -> bool:
        return node_id not in self._down

    # -- transfers ---------------------------------------------------------------
    def transfer(
        self,
        src: object,
        dst: object,
        nbytes: float,
        new_connection: bool = False,
    ) -> t.Generator[Event, object, float]:
        """Process body: move ``nbytes`` from ``src`` to ``dst``.

        Yields until the transfer completes; returns the elapsed transfer
        time.  Raises :class:`TransferFailed` if either endpoint is down at
        the start or goes down mid-transfer (checked at completion — the
        granularity at which TCP would observe a reset).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        start = self.env.now
        if not self.is_up(src) or not self.is_up(dst):
            raise TransferFailed(src, dst, nbytes, "endpoint down")
        setup = self.connection_setup_s if new_connection else 0.0
        if setup + self.latency_s > 0:
            yield self.env.timeout(setup + self.latency_s)
        if nbytes > 0:
            job = self.medium.use(nbytes, tag=(src, dst))
            yield job.event
        if not self.is_up(src) or not self.is_up(dst):
            raise TransferFailed(src, dst, nbytes, "endpoint failed mid-transfer")
        self.bytes_transferred += nbytes
        self.messages_sent += 1
        return self.env.now - start

    def broadcast(
        self, src: object, nbytes: float
    ) -> t.Generator[Event, object, float]:
        """Process body: broadcast ``nbytes`` from ``src`` to all nodes.

        On the shared medium a broadcast frame is transmitted once.  Returns
        elapsed time.  A broadcast from a down node silently vanishes
        (returns after the latency, transferring nothing) — the failure is
        then *observed* by peers through missing heartbeats, which is how
        the paper's membership protocol works.
        """
        start = self.env.now
        if self.latency_s > 0:
            yield self.env.timeout(self.latency_s)
        if not self.is_up(src):
            return self.env.now - start
        if nbytes > 0:
            job = self.medium.use(nbytes, tag=(src, "*"))
            yield job.event
        self.bytes_transferred += nbytes
        self.broadcasts_sent += 1
        return self.env.now - start

    def transfer_job(self, src: object, dst: object, nbytes: float) -> Job:
        """Low-level: submit raw bytes to the medium, returning the job.

        Used where a caller wants to compose the medium occupancy with
        other events itself (no latency, no failure semantics).
        """
        return self.medium.use(max(0.0, nbytes), tag=(src, dst))
