"""Extension: cross-validating the analytical model against the simulator.

The paper validates its intra-question model against measurements
(Table 10) but never closes the loop on the *inter*-question model (Eq
23) — its Figure 8 is analytical only.  We can: run the high-load
workload at several cluster sizes on the simulator, compute the measured
system speedup (throughput(N) / throughput(1)), and compare with Eq 23's
prediction at the same N.

A second sweep varies the monitoring interval, quantifying the cost of
stale load information — the knob behind every dispatcher decision.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from ..core import DistributedQASystem, Strategy, SystemConfig
from ..model import ModelParameters, system_speedup
from ..workload import staggered_arrivals, trec_mix_profiles
from .report import TextTable

__all__ = [
    "SpeedupPoint",
    "run_inter_validation",
    "format_inter_validation",
    "run_staleness_sweep",
    "format_staleness_sweep",
]


@dataclass(frozen=True, slots=True)
class SpeedupPoint:
    n_nodes: int
    measured_speedup: float
    analytical_speedup: float


def run_inter_validation(
    node_counts: t.Sequence[int] = (1, 2, 4, 8, 12, 16),
    questions_per_node: int = 6,
    seeds: t.Sequence[int] = (11, 23),
    params: ModelParameters | None = None,
) -> list[SpeedupPoint]:
    """Measured vs Eq-23 system speedup over cluster sizes.

    Speedup is throughput per unit of work relative to the 1-node system
    on a proportionally scaled workload (weak scaling, as Eq 23 assumes:
    q questions per processor).
    """
    params = params or ModelParameters()
    throughput: dict[int, float] = {}
    for n in node_counts:
        n_q = questions_per_node * n
        acc = []
        for seed in seeds:
            profiles = trec_mix_profiles(n_q, seed=seed)
            arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
            system = DistributedQASystem(
                SystemConfig(n_nodes=n, strategy=Strategy.DQA)
            )
            acc.append(system.run_workload(profiles, arrivals).throughput_qpm)
        throughput[n] = float(np.mean(acc))
    base = throughput[node_counts[0]] / node_counts[0]
    return [
        SpeedupPoint(
            n_nodes=n,
            measured_speedup=throughput[n] / base,
            analytical_speedup=system_speedup(params, n),
        )
        for n in node_counts
    ]


def format_inter_validation(points: t.Sequence[SpeedupPoint]) -> str:
    """Render the Eq-23-vs-simulation speedup comparison."""
    table = TextTable(
        "Extension: inter-question model (Eq 23) vs simulation",
        ["Procs", "Measured speedup", "Analytical speedup", "ratio"],
    )
    for p in points:
        ratio = (
            p.measured_speedup / p.analytical_speedup
            if p.analytical_speedup
            else 0.0
        )
        table.add_row(
            p.n_nodes, p.measured_speedup, p.analytical_speedup, f"{ratio:.2f}"
        )
    return table.render()


def run_staleness_sweep(
    intervals: t.Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    n_nodes: int = 8,
    seeds: t.Sequence[int] = (11, 23),
) -> list[tuple[float, float, float]]:
    """(interval, DQA throughput, mean response) per monitoring interval.

    Longer intervals mean staler load tables: dispatch decisions degrade,
    but monitoring traffic shrinks.  The paper fixes 1 s without
    justification; this sweep shows the plateau it sits on.
    """
    from repro.workload import high_load_count

    out = []
    n_q = high_load_count(n_nodes)
    for interval in intervals:
        thr, resp = [], []
        for seed in seeds:
            profiles = trec_mix_profiles(n_q, seed=seed)
            arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
            system = DistributedQASystem(
                SystemConfig(
                    n_nodes=n_nodes,
                    strategy=Strategy.DQA,
                    monitor_interval_s=interval,
                    membership_timeout_s=max(3.0, 3 * interval),
                )
            )
            rep = system.run_workload(profiles, arrivals)
            thr.append(rep.throughput_qpm)
            resp.append(rep.mean_response_s)
        out.append((interval, float(np.mean(thr)), float(np.mean(resp))))
    return out


def format_staleness_sweep(rows: t.Sequence[tuple[float, float, float]]) -> str:
    """Render the monitoring-interval sweep as a text table."""
    table = TextTable(
        "Extension: load-broadcast interval (staleness) sweep, DQA, 8 nodes",
        ["Interval (s)", "Throughput (q/min)", "Mean response (s)"],
    )
    for interval, thr, resp in rows:
        table.add_row(interval, thr, resp)
    return table.render()
