"""Simulation-core benchmark: events/sec microbench + parallel wall-clock.

Four measurements, written together to ``BENCH_simperf.json`` by
``python -m repro simbench``:

* **Event-loop microbench** — a seeded population of generator processes
  yielding pseudo-random timeout chains, executed twice over identical
  schedules: once through the *baseline* cost model (the public
  :meth:`~repro.simulation.engine.Environment.step` dispatched once per
  event, with an eagerly formatted per-timeout label — the costs the
  hot-path rewrite removed) and once through the *fast path*
  (:meth:`~repro.simulation.engine.Environment.run`'s inlined drain loop
  with lazy timeout names).  The two runs must fire every event in
  exactly the same order — the benchmark hard-fails otherwise — so the
  reported speedup is attributable to overhead, not to schedule drift.
* **Queue-backend equivalence gate** — the same seeded workload replayed
  under ``queue="heap"`` and ``queue="calendar"``, diffing the *full*
  firing log entry by entry.  The calendar queue's whole claim is
  "identical order, different complexity"; this gate hard-fails the
  benchmark (and CI) on the first divergent event.
* **Runner wall-clock** — a subset of `experiments.runner` sections run
  serially and with a process pool, asserting byte-identical reports.
* **Chaos wall-clock** — the chaos campaign grid, serial versus pooled,
  asserting cell-identical results.
* **Index-cache round trip** — build vs serialize vs attach timing of the
  packed index payload on a small corpus, its memory footprint next to
  the dict layout it replaced, and the bit-identical round-trip verdict
  from :func:`repro.experiments.context.index_cache_selftest`.

On a single-CPU host the parallel measurements legitimately show ~1x;
``cpu_count`` is recorded so readers can interpret the ratio.  The
determinism verdicts are machine-independent.
"""

from __future__ import annotations

import io
import json
import os
import random
import time
import typing as t

from ..simulation.engine import EmptySchedule, Environment
from ..simulation.events import Timeout
from .parallel import resolve_jobs

__all__ = [
    "run_event_microbench",
    "run_queue_equivalence",
    "run_runner_wallclock",
    "run_chaos_wallclock",
    "run_index_cache_bench",
    "run_simbench",
    "format_simperf",
    "write_simperf_json",
]

#: Default runner sections for the wall-clock comparison: cheap enough
#: for CI smoke, heavy enough that the pool has real work per section.
DEFAULT_SECTIONS = ("table4", "fig8", "fig9", "ablation-concurrency")


# -- event-loop microbench ------------------------------------------------------
def _build_workload(
    env: Environment,
    n_chains: int,
    chain_len: int,
    seed: int,
    record: list[tuple[int, int, float]],
    eager_names: bool,
) -> None:
    """Start ``n_chains`` timeout-chain processes on ``env``.

    Every chain appends ``(chain id, hop, now)`` to ``record`` after each
    timeout fires, which is the firing-order fingerprint the equivalence
    check compares.  ``eager_names`` reproduces the pre-rewrite cost of
    formatting a label per timeout.
    """
    rng = random.Random(seed)
    delays = [
        [rng.random() * 10.0 for _ in range(chain_len)]
        for _ in range(n_chains)
    ]

    def chain(
        cid: int, ds: list[float]
    ) -> t.Generator[Timeout, object, None]:
        for hop, d in enumerate(ds):
            if eager_names:
                yield Timeout(env, d, name=f"timeout({d:.6g})")
            else:
                yield env.timeout(d)
            record.append((cid, hop, env.now))

    for cid, ds in enumerate(delays):
        env.process(chain(cid, ds), name=f"chain[{cid}]")


def _drive_step(env: Environment) -> None:
    """Baseline driver: one public ``step()`` dispatch per event."""
    while True:
        try:
            env.step()
        except EmptySchedule:
            break


def run_event_microbench(
    n_chains: int = 400,
    chain_len: int = 50,
    seed: int = 17,
    repeats: int = 3,
) -> dict[str, t.Any]:
    """Time the baseline event loop against the fast path.

    Raises :class:`RuntimeError` if the two drivers fire events in a
    different order — the speedup is only meaningful over an identical
    schedule.
    """

    def measure(eager: bool, drive: t.Callable[[Environment], None]):
        best = float("inf")
        record: list[tuple[int, int, float]] = []
        events = 0
        for _ in range(repeats):
            record = []
            env = Environment()
            _build_workload(env, n_chains, chain_len, seed, record, eager)
            t0 = time.perf_counter()
            drive(env)
            best = min(best, time.perf_counter() - t0)
            events = next(env._seq)  # total events scheduled
        return best, events, record

    baseline_s, n_events, baseline_order = measure(True, _drive_step)
    fast_s, fast_events, fast_order = measure(False, lambda env: env.run())
    if baseline_order != fast_order:
        raise RuntimeError(
            "event microbench: fast path fired events in a different "
            "order than the baseline step() loop"
        )
    if n_events != fast_events:
        raise RuntimeError(
            f"event microbench: event counts diverged "
            f"({n_events} baseline vs {fast_events} fast)"
        )
    return {
        "chains": n_chains,
        "chain_len": chain_len,
        "events": n_events,
        "baseline": {
            "elapsed_s": baseline_s,
            "events_per_s": n_events / baseline_s,
        },
        "fast": {
            "elapsed_s": fast_s,
            "events_per_s": n_events / fast_s,
        },
        "speedup": baseline_s / fast_s,
        "ordering_identical": True,
    }


# -- queue-backend equivalence gate ---------------------------------------------
def run_queue_equivalence(
    n_chains: int = 400,
    chain_len: int = 50,
    seed: int = 23,
) -> dict[str, t.Any]:
    """Replay one seeded run under both queue backends; diff the full log.

    Raises :class:`RuntimeError` on the first divergent firing — the
    calendar queue is only admissible if its pop order is byte-identical
    to the heap's ``(when, prio, seq)`` order.
    """

    def replay(queue: str):
        record: list[tuple[int, int, float]] = []
        env = Environment(queue=queue)
        _build_workload(env, n_chains, chain_len, seed, record, False)
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        return record, next(env._seq), env.now, elapsed

    heap_log, heap_events, heap_now, heap_s = replay("heap")
    cal_log, cal_events, cal_now, cal_s = replay("calendar")
    if heap_log != cal_log or heap_events != cal_events or heap_now != cal_now:
        for i, (h, c) in enumerate(zip(heap_log, cal_log)):
            if h != c:
                raise RuntimeError(
                    f"queue equivalence gate: firing {i} diverged — "
                    f"heap fired {h}, calendar fired {c}"
                )
        raise RuntimeError(
            f"queue equivalence gate: logs diverged in length/clock "
            f"(heap {len(heap_log)} firings, {heap_events} events, "
            f"now={heap_now}; calendar {len(cal_log)} firings, "
            f"{cal_events} events, now={cal_now})"
        )
    return {
        "chains": n_chains,
        "chain_len": chain_len,
        "events": heap_events,
        "heap": {
            "elapsed_s": heap_s,
            "events_per_s": heap_events / heap_s,
        },
        "calendar": {
            "elapsed_s": cal_s,
            "events_per_s": cal_events / cal_s,
        },
        "ordering_identical": True,
    }


# -- experiment-harness wall-clock ----------------------------------------------
def run_runner_wallclock(
    sections: t.Sequence[str] = DEFAULT_SECTIONS,
    jobs: int | str | None = "auto",
) -> dict[str, t.Any]:
    """Time a runner subset serial vs parallel; reports must match."""
    from .runner import run_all

    n_jobs = resolve_jobs(jobs)

    def render(j: int) -> tuple[str, float]:
        buf = io.StringIO()
        t0 = time.perf_counter()
        run_all(list(sections), stream=buf, jobs=j)
        return buf.getvalue(), time.perf_counter() - t0

    serial_report, serial_s = render(1)
    parallel_report, parallel_s = render(n_jobs)
    return {
        "sections": list(sections),
        "jobs": n_jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "identical": serial_report == parallel_report,
    }


def run_chaos_wallclock(
    jobs: int | str | None = "auto",
    n_nodes: int = 6,
    n_questions: int = 12,
) -> dict[str, t.Any]:
    """Time the chaos campaign serial vs parallel; cells must match."""
    from .chaos_campaign import format_campaign, run_campaign

    n_jobs = resolve_jobs(jobs)
    t0 = time.perf_counter()
    serial = run_campaign(n_nodes=n_nodes, n_questions=n_questions, jobs=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign(
        n_nodes=n_nodes, n_questions=n_questions, jobs=n_jobs
    )
    parallel_s = time.perf_counter() - t0
    return {
        "jobs": n_jobs,
        "cells": len(serial),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "identical": (
            serial == parallel
            and format_campaign(serial) == format_campaign(parallel)
        ),
    }


# -- packed-index cache round trip -----------------------------------------------
def run_index_cache_bench(seed: int = 17) -> dict[str, t.Any]:
    """Build/serialize/attach timing + round-trip verdict of the v2 artifact."""
    import pickle

    from ..corpus import CorpusConfig, generate_corpus
    from ..nlp.vocabulary import Vocabulary
    from ..retrieval import (
        CollectionIndex,
        attach_payload,
        indexes_to_payload,
        memory_footprint,
    )
    from .context import index_cache_selftest

    config = CorpusConfig(
        n_collections=2, docs_per_collection=20, vocab_size=500, seed=seed
    )
    corpus = generate_corpus(config)
    t0 = time.perf_counter()
    indexes = [CollectionIndex(coll) for coll in corpus.collections]
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    blob = pickle.dumps(
        indexes_to_payload(indexes), protocol=pickle.HIGHEST_PROTOCOL
    )
    serialize_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    attach_payload(corpus, pickle.loads(blob), vocabulary=Vocabulary())
    attach_s = time.perf_counter() - t0
    report = index_cache_selftest(config)
    footprint = memory_footprint(indexes)
    return {
        "build_s": build_s,
        "serialize_s": serialize_s,
        "attach_s": attach_s,
        "attach_speedup": build_s / attach_s if attach_s > 0 else float("inf"),
        "payload_bytes": len(blob),
        "memory": footprint,
        "roundtrip_identical": report["roundtrip_identical"],
        "queries_identical": report["queries_identical"],
    }


# -- top level -------------------------------------------------------------------
def run_simbench(
    n_chains: int = 400,
    chain_len: int = 50,
    seed: int = 17,
    sections: t.Sequence[str] = DEFAULT_SECTIONS,
    jobs: int | str | None = "auto",
) -> dict[str, t.Any]:
    """Run all the benchmarks and collect one summary dict."""
    micro = run_event_microbench(
        n_chains=n_chains, chain_len=chain_len, seed=seed
    )
    queue_gate = run_queue_equivalence(
        n_chains=n_chains, chain_len=chain_len, seed=seed + 6
    )
    runner = run_runner_wallclock(sections=sections, jobs=jobs)
    chaos = run_chaos_wallclock(jobs=jobs)
    index_cache = run_index_cache_bench()
    cpu_count = os.cpu_count()
    if chaos["speedup"] < 1.0 and (cpu_count or 1) <= 1:
        # Not a failure: a process pool on one core only adds overhead.
        chaos["warning"] = (
            f"parallel chaos speedup {chaos['speedup']:.2f}x < 1.0 on a "
            f"single-core runner (cpu_count={cpu_count}); the ratio "
            f"measures pool overhead here, not a regression"
        )
    return {
        "schema": "simperf-v3",
        "cpu_count": cpu_count,
        #: Backend the timed microbench loops ran on; the equivalence
        #: gate below times both.
        "queue_impl": Environment().queue_impl,
        "microbench": micro,
        "queue_equivalence": queue_gate,
        "runner": runner,
        "chaos": chaos,
        "index_cache": index_cache,
        "ok": bool(
            micro["ordering_identical"]
            and queue_gate["ordering_identical"]
            and runner["identical"]
            and chaos["identical"]
            and index_cache["roundtrip_identical"]
            and index_cache["queries_identical"]
        ),
    }


def format_simperf(summary: dict[str, t.Any]) -> str:
    """Human-readable report of a simbench summary."""
    m, r, c = summary["microbench"], summary["runner"], summary["chaos"]
    lines = [
        f"Simulation-core benchmark (cpu_count={summary['cpu_count']}, "
        f"queue_impl={summary.get('queue_impl', 'heap')})",
        "",
        f"event loop   : {m['events']} events over {m['chains']} chains",
        f"  baseline   : {m['baseline']['events_per_s']:,.0f} events/s "
        f"({m['baseline']['elapsed_s'] * 1e3:.1f} ms)",
        f"  fast path  : {m['fast']['events_per_s']:,.0f} events/s "
        f"({m['fast']['elapsed_s'] * 1e3:.1f} ms)",
        f"  speedup    : {m['speedup']:.2f}x "
        f"(ordering identical: {m['ordering_identical']})",
        "",
    ]
    qg = summary.get("queue_equivalence")
    if qg is not None:
        lines += [
            f"queue gate   : {qg['events']} events, heap vs calendar",
            f"  heap       : {qg['heap']['events_per_s']:,.0f} events/s "
            f"({qg['heap']['elapsed_s'] * 1e3:.1f} ms)",
            f"  calendar   : {qg['calendar']['events_per_s']:,.0f} events/s "
            f"({qg['calendar']['elapsed_s'] * 1e3:.1f} ms)",
            f"  ordering   : identical={qg['ordering_identical']}",
            "",
        ]
    lines += [
        f"runner       : {len(r['sections'])} sections, jobs={r['jobs']}",
        f"  serial     : {r['serial_s']:.2f} s",
        f"  parallel   : {r['parallel_s']:.2f} s "
        f"({r['speedup']:.2f}x, byte-identical: {r['identical']})",
        "",
        f"chaos        : {c['cells']} cells, jobs={c['jobs']}",
        f"  serial     : {c['serial_s']:.2f} s",
        f"  parallel   : {c['parallel_s']:.2f} s "
        f"({c['speedup']:.2f}x, cell-identical: {c['identical']})",
    ]
    if c.get("warning"):
        lines.append(f"  WARNING    : {c['warning']}")
    ic = summary.get("index_cache")
    if ic is not None:
        mem = ic["memory"]
        lines += [
            "",
            f"index cache  : payload {ic['payload_bytes'] / 1e6:.2f} MB",
            f"  build      : {ic['build_s'] * 1e3:.1f} ms",
            f"  serialize  : {ic['serialize_s'] * 1e3:.1f} ms",
            f"  attach     : {ic['attach_s'] * 1e3:.1f} ms "
            f"({ic['attach_speedup']:.1f}x faster than rebuild)",
            f"  memory     : packed {mem['packed_bytes'] / 1e6:.2f} MB vs dict "
            f"{mem['dict_layout_bytes'] / 1e6:.2f} MB "
            f"({mem['reduction']:.1f}x smaller)",
            f"  round trip : identical={ic['roundtrip_identical']}, "
            f"queries identical={ic['queries_identical']}",
        ]
    return "\n".join(lines)


def write_simperf_json(
    summary: dict[str, t.Any], path: str = "BENCH_simperf.json"
) -> str:
    """Write the summary as JSON; returns the path written."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
