"""Chaos campaign: randomized fault sweeps against all three strategies.

The hand-written churn study (:mod:`repro.experiments.robustness_exp`)
kills two nodes at fixed times.  The chaos campaign generalises it into a
systematic robustness sweep: for every fault rate in a grid and every
partitioning strategy (SEND / ISEND / RECV), a seeded randomized
:class:`~repro.simulation.chaos.ChaosConfig` schedule — crash storms,
correlated failures, flapping and permanent deaths — is injected into a
full workload run, with the retry/timeout/backoff machinery engaged:

* bounded-retry + backoff in the distribution loops
  (:class:`~repro.core.partitioning.RetryPolicy`),
* migration-dispatch retry in the question dispatcher,
* front-end re-admission of questions whose host died
  (``question_retry_budget``).

Each cell reports the question-conservation ledger (admitted = completed
+ lost + in-flight), retry counts, degraded-mode throughput, recovery
latency of re-admitted questions and the membership protocol's failure
detection latency.  Everything is reproducible from the campaign seed.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from ..core import (
    DistributedQASystem,
    PartitioningStrategy,
    RetryPolicy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from ..simulation import ChaosConfig, generate_chaos_schedule
from ..workload import (
    FailureAccounting,
    failure_accounting,
    staggered_arrivals,
    trec_mix_profiles,
)
from .parallel import run_cells
from .report import TextTable

__all__ = [
    "CampaignCell",
    "campaign_retry_policy",
    "detection_latencies",
    "format_campaign",
    "run_campaign",
    "run_campaign_cell",
]

def campaign_retry_policy() -> RetryPolicy:
    """Bounded recovery used by every campaign run.

    Up to 6 recovery rounds per distribution loop, 100 ms initial backoff
    doubling to a 5 s cap.
    """
    return RetryPolicy(
        max_rounds=6, backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=5.0
    )


@dataclass(frozen=True, slots=True)
class CampaignCell:
    """One (strategy, fault rate) cell of the sweep."""

    strategy: str
    fault_rate: float
    accounting: FailureAccounting
    throughput_qpm: float
    makespan_s: float
    #: Node-down transitions the injector actually performed.
    injected_kills: int
    #: Mean injected-kill -> membership-leave gap (protocol detection).
    mean_detection_latency_s: float


def detection_latencies(
    injector_log: t.Sequence[tuple[float, object, bool]],
    membership_log: t.Sequence[tuple[float, int, bool]],
) -> list[float]:
    """Match injected kills with the membership protocol's leave events.

    A kill with no matching leave (the node flapped back up before its
    heartbeat went stale) contributes nothing — the membership protocol
    never saw it, which is the desired behaviour, not a detection miss.
    """
    leaves = sorted(
        (when, nid) for when, nid, live in membership_log if not live
    )
    used: set[int] = set()
    out: list[float] = []
    for killed_at, node_id, up in sorted(injector_log):
        if up:
            continue
        for i, (when, nid) in enumerate(leaves):
            if i in used or nid != node_id or when < killed_at:
                continue
            out.append(when - killed_at)
            used.add(i)
            break
    return out


def run_campaign_cell(
    strategy: PartitioningStrategy,
    fault_rate: float,
    n_nodes: int = 6,
    n_questions: int = 12,
    seed: int = 11,
    stagger_s: float = 2.0,
    retry_budget: int = 3,
    mean_downtime_s: float = 30.0,
    min_live_nodes: int = 2,
    horizon_s: float = 900.0,
    trace: bool = False,
    profiles: t.Sequence[t.Any] | None = None,
    arrivals: t.Sequence[float] | None = None,
) -> tuple[CampaignCell, DistributedQASystem]:
    """Run one cell; returns the cell plus the (finished) system.

    ``profiles``/``arrivals`` let a sweep build the (cell-invariant)
    workload once and share it across cells; omitted, they are derived
    from ``seed`` exactly as the sweep would.
    """
    if profiles is None:
        profiles = trec_mix_profiles(n_questions, seed=seed)
    if arrivals is None:
        arrivals = staggered_arrivals(n_questions, stagger_s, seed=seed)
    policy = TaskPolicy(
        pr_strategy=strategy,
        ap_strategy=strategy,
        distribution_retry=campaign_retry_policy(),
    )
    system = DistributedQASystem(
        SystemConfig(
            n_nodes=n_nodes,
            strategy=Strategy.DQA,
            policy=policy,
            seed=seed,
            question_retry_budget=retry_budget,
            trace=trace,
        )
    )
    schedule = generate_chaos_schedule(
        ChaosConfig(
            seed=seed,
            horizon_s=horizon_s,
            crash_rate=fault_rate,
            mean_downtime_s=mean_downtime_s,
            min_live_nodes=min_live_nodes,
        ),
        n_nodes,
    )
    system.failures.apply(schedule)
    report = system.run_workload(profiles, arrivals)
    latencies = detection_latencies(
        system.failures.log, system.monitoring.membership_log
    )
    cell = CampaignCell(
        strategy=strategy.value,
        fault_rate=fault_rate,
        accounting=failure_accounting(report),
        throughput_qpm=report.throughput_qpm,
        makespan_s=report.makespan_s,
        injected_kills=sum(1 for _, _, up in system.failures.log if not up),
        mean_detection_latency_s=(
            float(np.mean(latencies)) if latencies else 0.0
        ),
    )
    return cell, system


def _cell_worker(
    spec: tuple[str, float, dict[str, t.Any]]
) -> CampaignCell:
    """Process-pool entry point: run one (strategy, fault-rate) cell.

    Takes a picklable spec (the strategy travels by name) and drops the
    finished system — only the cell summary crosses the process
    boundary.
    """
    strategy_name, fault_rate, kwargs = spec
    cell, _ = run_campaign_cell(
        PartitioningStrategy[strategy_name], fault_rate, **kwargs
    )
    return cell


def run_campaign(
    n_nodes: int = 6,
    n_questions: int = 12,
    strategies: t.Sequence[PartitioningStrategy] = tuple(PartitioningStrategy),
    fault_rates: t.Sequence[float] = (0.0, 1.0 / 400.0, 1.0 / 150.0),
    seed: int = 11,
    jobs: int | str | None = None,
    **cell_kwargs: t.Any,
) -> list[CampaignCell]:
    """Sweep fault rates against strategies; every cell must balance.

    The workload (profiles + arrival schedule) depends only on the
    campaign seed, so it is built once here and shared by every cell
    instead of being regenerated per (strategy, fault-rate) pair.  With
    ``jobs`` > 1 the independent cells run on a process pool; results
    are merged in grid order, so the returned list — and any report
    formatted from it — is byte-identical to a serial run.

    Raises :class:`RuntimeError` if any cell loses track of a question
    (completed + lost + in-flight != admitted) — the campaign's core
    safety assertion, not just a reported number.
    """
    stagger_s = cell_kwargs.get("stagger_s", 2.0)
    shared = dict(
        cell_kwargs,
        n_nodes=n_nodes,
        n_questions=n_questions,
        seed=seed,
        profiles=trec_mix_profiles(n_questions, seed=seed),
        arrivals=staggered_arrivals(n_questions, stagger_s, seed=seed),
    )
    specs = [
        (strategy.name, fault_rate, shared)
        for fault_rate in fault_rates
        for strategy in strategies
    ]
    cells = run_cells(_cell_worker, specs, jobs=jobs)
    for cell in cells:
        if not cell.accounting.balanced:
            raise RuntimeError(
                f"unaccounted questions in cell {cell.strategy} @ "
                f"rate {cell.fault_rate}: {cell.accounting}"
            )
    return cells


def format_campaign(cells: t.Sequence[CampaignCell]) -> str:
    """Render the campaign sweep as a text table."""
    table = TextTable(
        "Chaos campaign: fault-rate sweep x partitioning strategy "
        "(seeded; admitted = completed + lost, retries re-admit at the "
        "front-end)",
        [
            "strategy",
            "fault rate (/node/s)",
            "kills",
            "admitted",
            "completed",
            "lost",
            "retries",
            "thpt (q/min)",
            "recovery (s)",
            "detect (s)",
        ],
    )
    for c in cells:
        table.add_row(
            c.strategy,
            f"{c.fault_rate:.4f}",
            c.injected_kills,
            c.accounting.admitted,
            c.accounting.completed,
            c.accounting.lost,
            c.accounting.retries,
            c.throughput_qpm,
            c.accounting.mean_recovery_latency_s,
            c.mean_detection_latency_s,
        )
    return table.render()
