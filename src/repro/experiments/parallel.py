"""Deterministic parallel execution of independent experiment cells.

The experiment suite is a collection of *cells* — (strategy, fault-rate)
pairs, (node-count, seed) pairs, sweep points — that are embarrassingly
parallel: no cell reads another cell's output, exactly like the paper's
SEND/ISEND partitioning of independent work items.  :func:`run_cells`
schedules them on a process pool while preserving the one invariant the
whole reproduction rests on: **parallel output is byte-identical to
serial output**.  Three rules make that hold:

* every cell is simulated in its own fresh ``Environment`` from its own
  explicit seed, so a cell's result is a pure function of its spec;
* results are merged back in *submission order* (``Executor.map``), never
  completion order;
* workers derive any auxiliary randomness through :func:`derive_seed`,
  which hashes with SHA-256 — stable across processes, platforms, and
  ``PYTHONHASHSEED`` values (the builtin ``hash`` is none of those).

The pool prefers the ``fork`` start method: children inherit the
parent's warm ``lru_cache`` of experiment contexts (see
:mod:`repro.experiments.context`), so no worker rebuilds a corpus the
parent already has.  Where ``fork`` is unavailable — or a worker needs a
context the parent never built — the on-disk v2 artifact cache keeps the
cold-start cost to one unpickle per worker: the corpus comes back as a
pickle, and the packed index payload *attaches*
(:func:`repro.retrieval.packing.attach_payload`) instead of re-running
tokenize + stem + intern, so the index is built once per machine rather
than once per process.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import typing as t
from concurrent.futures import ProcessPoolExecutor

__all__ = ["resolve_jobs", "derive_seed", "run_cells"]

C = t.TypeVar("C")
R = t.TypeVar("R")


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value to a worker count.

    ``None`` and ``1`` mean serial; ``"auto"`` means one worker per CPU;
    an integer (or integer string) is used as given.  Anything below 1
    is rejected.
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


def derive_seed(base: int, *parts: object) -> int:
    """Derive a per-cell seed from a base seed and the cell's identity.

    SHA-256 over the reprs, truncated to 63 bits — deterministic across
    processes and platforms, unlike ``hash()``.  Distinct ``parts``
    yield (with overwhelming probability) distinct, uncorrelated seeds.
    """
    payload = repr((base,) + parts).encode("utf-8")
    return int.from_bytes(
        hashlib.sha256(payload).digest()[:8], "big"
    ) & 0x7FFFFFFFFFFFFFFF


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (warm caches, inherited hash seed); else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def run_cells(
    worker: t.Callable[[C], R],
    cells: t.Sequence[C],
    jobs: int | str | None = None,
) -> list[R]:
    """Run ``worker`` over every cell, returning results in cell order.

    ``worker`` must be a module-level callable and each cell spec
    picklable (the usual process-pool constraints).  With ``jobs`` ≤ 1 —
    or fewer than two cells — everything runs inline in this process:
    the serial path involves no pool, so serial callers pay nothing for
    the parallel capability.

    The result list is always ordered like ``cells``, regardless of
    which worker finished first, which is what keeps parallel reports
    byte-identical to serial ones.
    """
    n_jobs = resolve_jobs(jobs)
    cells = list(cells)
    if n_jobs <= 1 or len(cells) < 2:
        return [worker(cell) for cell in cells]
    n_jobs = min(n_jobs, len(cells))
    with ProcessPoolExecutor(
        max_workers=n_jobs, mp_context=_pool_context()
    ) as pool:
        # Executor.map preserves submission order in its results.
        return list(pool.map(worker, cells))
