"""Experiment drivers: one per table/figure of the paper, plus ablations.

See DESIGN.md §5 for the experiment index.  ``python -m
repro.experiments.runner`` regenerates everything.
"""

from .context import ExperimentContext, complex_profiles, default_context
from .runner import EXPERIMENTS, run_all

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "complex_profiles",
    "default_context",
    "run_all",
]
