"""Run every experiment and emit the full report.

``python -m repro.experiments.runner`` regenerates every table and figure
of the paper (plus the ablations) and prints them in order.  Individual
experiments are importable separately; this module is the one-shot
entry point used to produce EXPERIMENTS.md's measured columns.
"""

from __future__ import annotations

import argparse
import sys
import time
import typing as t

from ..core import PartitioningStrategy
from .ablations import (
    format_concurrency_sweep,
    format_dispatcher_ablation,
    format_margin_sweep,
    format_threshold_sweep,
    run_concurrency_sweep,
    run_dispatcher_ablation,
    run_margin_sweep,
    run_threshold_sweep,
)
from .figures import format_fig8, format_fig9, run_fig7_trace, run_fig8, run_fig9
from .intra_question_exp import (
    format_table8,
    format_table9,
    format_table10,
    run_intra_question,
)
from .load_balancing import format_tables_5_6_7, run_load_balancing
from .partitioning_exp import (
    format_fig10,
    format_table11,
    run_fig10,
    run_table11,
)
from .table1_examples import format_table1, run_table1
from .table2_module_analysis import format_table2, run_table2
from .table3_resource_weights import format_table3, run_table3
from .table4_upper_limits import format_table4, run_table4

from .parallel import run_cells

__all__ = ["run_all", "run_experiment", "EXPERIMENTS"]

#: name -> callable returning the rendered report section.
EXPERIMENTS: dict[str, t.Callable[[], str]] = {
    "table1": lambda: format_table1(run_table1()),
    "table2": lambda: format_table2(run_table2()),
    "table3": lambda: format_table3(run_table3()),
    "table4": lambda: format_table4(run_table4()),
    "tables5-7": lambda: format_tables_5_6_7(run_load_balancing()),
    "tables8-10": lambda: _tables_8_9_10(),
    "table11": lambda: format_table11(run_table11()),
    "fig7": lambda: "\n\n".join(
        run_fig7_trace(s)
        for s in (
            PartitioningStrategy.SEND,
            PartitioningStrategy.ISEND,
            PartitioningStrategy.RECV,
        )
    ),
    "fig8": lambda: format_fig8(run_fig8()),
    "fig9": lambda: format_fig9(run_fig9()),
    "fig10": lambda: format_fig10(run_fig10()),
    "ablation-dispatchers": lambda: format_dispatcher_ablation(
        run_dispatcher_ablation()
    ),
    "ablation-concurrency": lambda: format_concurrency_sweep(
        run_concurrency_sweep()
    ),
    "ablation-threshold": lambda: format_threshold_sweep(run_threshold_sweep()),
    "ablation-margin": lambda: format_margin_sweep(run_margin_sweep()),
    "ext-chaos": lambda: _ext_chaos(),
    "ext-prediction": lambda: _ext_prediction(),
    "ext-heterogeneous": lambda: _ext_heterogeneous(),
    "ext-churn": lambda: _ext_churn(),
    "ext-cache-skew": lambda: _ext_cache_skew(),
    "ext-model-validation": lambda: _ext_model_validation(),
    "ext-staleness": lambda: _ext_staleness(),
    "ext-stealing": lambda: _ext_stealing(),
}


def _ext_chaos() -> str:
    from .chaos_campaign import format_campaign, run_campaign

    return format_campaign(run_campaign())


def _ext_stealing() -> str:
    from .stealing_exp import format_stealing, run_stealing

    return format_stealing(run_stealing())


def _ext_model_validation() -> str:
    from .validation_exp import format_inter_validation, run_inter_validation

    return format_inter_validation(run_inter_validation())


def _ext_staleness() -> str:
    from .validation_exp import format_staleness_sweep, run_staleness_sweep

    return format_staleness_sweep(run_staleness_sweep())


def _ext_prediction() -> str:
    from .prediction_exp import format_prediction, run_prediction

    return format_prediction(run_prediction())


def _ext_heterogeneous() -> str:
    from .robustness_exp import format_heterogeneous, run_heterogeneous

    return format_heterogeneous(run_heterogeneous())


def _ext_churn() -> str:
    from .robustness_exp import format_churn, run_churn

    return format_churn(run_churn())


def _ext_cache_skew() -> str:
    from .robustness_exp import format_cache_skew, run_cache_skew

    return format_cache_skew(run_cache_skew())


def _tables_8_9_10() -> str:
    rows = run_intra_question()
    return "\n\n".join(
        [format_table8(rows), format_table9(rows), format_table10(rows)]
    )


def run_experiment(name: str) -> str:
    """Render one experiment section (module-level: a valid pool worker)."""
    return EXPERIMENTS[name]()


def run_all(
    only: t.Sequence[str] | None = None,
    stream: t.TextIO | None = None,
    jobs: int | str | None = None,
) -> None:
    """Run (a subset of) the experiments, printing each section.

    With ``jobs`` > 1 the sections run on a process pool and are merged
    back in request order, so the report written to ``stream`` is
    byte-identical to a serial run.  Wall-clock timings go to stderr —
    they vary run to run and must not perturb the report itself.
    """
    if stream is None:
        stream = sys.stdout  # resolved at call time (test capture works)
    names = list(only) if only else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; known: {list(EXPERIMENTS)}")
    t_start = time.perf_counter()
    from .parallel import resolve_jobs

    if resolve_jobs(jobs) <= 1:
        # Serial: print each section as soon as it is ready.
        for name in names:
            t0 = time.perf_counter()
            section = run_experiment(name)
            dt = time.perf_counter() - t0
            print(f"\n### {name}\n", file=stream)
            print(section, file=stream)
            print(f"[runner] {name}: {dt:.1f}s", file=sys.stderr)
    else:
        for name, section in zip(names, run_cells(run_experiment, names, jobs=jobs)):
            print(f"\n### {name}\n", file=stream)
            print(section, file=stream)
    print(
        f"[runner] {len(names)} section(s) in "
        f"{time.perf_counter() - t_start:.1f}s wall",
        file=sys.stderr,
    )


def main(argv: t.Sequence[str] | None = None) -> None:
    """Parse arguments and run the selected experiments."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"subset to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "-o", "--output",
        help="also write the report to this file",
    )
    parser.add_argument(
        "-j", "--jobs", default=None,
        help="parallel workers (an integer, or 'auto' for one per CPU); "
        "output is byte-identical to a serial run",
    )
    args = parser.parse_args(argv)
    if args.output:
        import io

        buffer = io.StringIO()

        class _Tee:
            def write(self, text: str) -> int:
                sys.stdout.write(text)
                return buffer.write(text)

        run_all(
            args.experiments or None,
            stream=t.cast(t.TextIO, _Tee()),
            jobs=args.jobs,
        )
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(buffer.getvalue())
    else:
        run_all(args.experiments or None, jobs=args.jobs)


if __name__ == "__main__":
    main()
