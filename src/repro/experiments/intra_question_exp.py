"""Tables 8, 9 and 10 — intra-question parallelism at low load.

Protocol (Section 6.2): complex questions executed one at a time on
1/4/8/12-node clusters with RECV partitioning for both PR and AP; measure

* Table 8 — per-module critical-path times and response times,
* Table 9 — the distribution-overhead breakdown per question,
* Table 10 — analytical (Eq 36) versus measured question speedup.

Paper shapes: PR time flat from 8 to 12 processors (only 8
sub-collections); total overhead < 3 % of response time; measured speedup
below analytical with the gap growing with N.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from ..core import DistributedQASystem, Strategy, SystemConfig
from ..model import ModelParameters, question_speedup
from ..qa.profiles import QuestionProfile
from .context import complex_profiles
from .parallel import run_cells
from .report import TextTable

__all__ = [
    "IntraRow",
    "run_intra_question",
    "format_table8",
    "format_table9",
    "format_table10",
]

PAPER_TABLE8 = {
    1: {"QP": 0.81, "PR": 38.01, "PS": 2.06, "PO": 0.02, "AP": 117.55, "resp": 158.47},
    4: {"QP": 0.81, "PR": 9.78, "PS": 0.54, "PO": 0.02, "AP": 31.51, "resp": 43.13},
    8: {"QP": 0.81, "PR": 7.34, "PS": 0.41, "PO": 0.02, "AP": 17.86, "resp": 27.07},
    12: {"QP": 0.81, "PR": 7.34, "PS": 0.41, "PO": 0.02, "AP": 11.90, "resp": 21.17},
}

PAPER_TABLE9 = {
    4: {"keyword_send": 0.04, "paragraph_recv": 0.19, "paragraph_send": 0.15,
        "answer_recv": 0.05, "answer_sort": 0.01, "total": 0.44},
    8: {"keyword_send": 0.08, "paragraph_recv": 0.24, "paragraph_send": 0.19,
        "answer_recv": 0.09, "answer_sort": 0.01, "total": 0.61},
    12: {"keyword_send": 0.08, "paragraph_recv": 0.24, "paragraph_send": 0.22,
         "answer_recv": 0.12, "answer_sort": 0.01, "total": 0.67},
}

PAPER_TABLE10 = {4: (3.84, 3.67), 8: (7.34, 5.85), 12: (10.60, 7.48)}


@dataclass(slots=True)
class IntraRow:
    """Aggregated low-load measurements for one cluster size."""

    n_nodes: int
    module_times: dict[str, float]
    response_s: float
    overhead: dict[str, float]
    measured_speedup: float = 0.0
    analytical_speedup: float = 0.0


def _intra_cell(
    spec: tuple[int, tuple[QuestionProfile, ...]]
) -> IntraRow:
    """Pool worker: one cluster size's low-load measurements.

    The speedup fields stay 0 here — they relate rows to each other
    (measured against the first row's response), so the sweep fills them
    in after the ordered merge.
    """
    n_nodes, profiles = spec
    module_acc: dict[str, list[float]] = {
        k: [] for k in ("QP", "PR", "PS", "PO", "AP")
    }
    overhead_acc: dict[str, list[float]] = {}
    responses: list[float] = []
    for prof in profiles:
        system = DistributedQASystem(
            SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA)
        )
        rep = system.run_workload([prof])
        r = rep.results[0]
        for k in module_acc:
            module_acc[k].append(r.module_times[k])
        for k, v in r.overhead.items():
            overhead_acc.setdefault(k, []).append(v)
        responses.append(r.response_time)
    return IntraRow(
        n_nodes=n_nodes,
        module_times={k: float(np.mean(v)) for k, v in module_acc.items()},
        response_s=float(np.mean(responses)),
        overhead={k: float(np.mean(v)) for k, v in overhead_acc.items()},
    )


def run_intra_question(
    node_counts: t.Sequence[int] = (1, 4, 8, 12),
    n_questions: int = 20,
    seed: int = 3,
    profiles: t.Sequence[QuestionProfile] | None = None,
    params: ModelParameters | None = None,
    jobs: int | str | None = None,
) -> list[IntraRow]:
    """Execute complex questions one at a time per cluster size.

    Each cluster size is an independent cell; the cross-row speedup
    ratios are computed after the (ordered) merge, so parallel runs
    produce the same rows as serial ones.
    """
    profiles = tuple(profiles or complex_profiles(n_questions, seed=seed))
    params = params or ModelParameters()
    specs = [(n_nodes, profiles) for n_nodes in node_counts]
    rows = run_cells(_intra_cell, specs, jobs=jobs)
    base_response: float | None = None
    for row in rows:
        if base_response is None:
            base_response = row.response_s
        row.measured_speedup = base_response / row.response_s
        row.analytical_speedup = (
            1.0 if row.n_nodes == 1 else question_speedup(params, row.n_nodes)
        )
    return rows


def format_table8(rows: t.Sequence[IntraRow]) -> str:
    """Render Table 8 (module times) with the paper's response column."""
    table = TextTable(
        "Table 8: observed module times and question response times (s)",
        ["Procs", "QP", "PR", "PS", "PO", "AP", "Response", "paper resp"],
    )
    for r in rows:
        paper = PAPER_TABLE8.get(r.n_nodes, {})
        table.add_row(
            r.n_nodes,
            r.module_times["QP"],
            r.module_times["PR"],
            r.module_times["PS"],
            r.module_times["PO"],
            r.module_times["AP"],
            r.response_s,
            paper.get("resp", "-"),
        )
    return table.render()


def format_table9(rows: t.Sequence[IntraRow]) -> str:
    """Render Table 9 (overhead breakdown) with the paper's totals."""
    table = TextTable(
        "Table 9: measured distribution overhead per question (s)",
        ["Procs", "Kw send", "Para recv", "Para send", "Ans recv",
         "Ans sort", "Total", "paper total"],
    )
    for r in rows:
        if r.n_nodes == 1:
            continue
        total = sum(r.overhead.values())
        paper = PAPER_TABLE9.get(r.n_nodes, {})
        table.add_row(
            r.n_nodes,
            r.overhead.get("keyword_send", 0.0),
            r.overhead.get("paragraph_recv", 0.0),
            r.overhead.get("paragraph_send", 0.0),
            r.overhead.get("answer_recv", 0.0),
            r.overhead.get("answer_sort", 0.0),
            total,
            paper.get("total", "-"),
        )
    return table.render()


def format_table10(rows: t.Sequence[IntraRow]) -> str:
    """Render Table 10 (analytical vs measured speedups)."""
    table = TextTable(
        "Table 10: analytical versus measured question speedup",
        ["Procs", "Analytical", "Measured", "paper analytical", "paper measured"],
    )
    for r in rows:
        if r.n_nodes == 1:
            continue
        paper = PAPER_TABLE10.get(r.n_nodes, ("-", "-"))
        table.add_row(
            r.n_nodes, r.analytical_speedup, r.measured_speedup, paper[0], paper[1]
        )
    return table.render()
