"""Tables 5, 6 and 7 — the high-load load-balancing comparison.

Protocol (Section 6.1): for N in {4, 8, 12} processors, start 8N
questions (twice the overload level) at 0-2 s staggered intervals, drawn
from the mixed TREC-8/TREC-9 population, with a perfect round-robin
initial distribution; run under the DNS, INTER and DQA strategies with
identical questions and startup sequence; report

* Table 5 — system throughput (questions/minute),
* Table 6 — average question response times (seconds),
* Table 7 — migrations at the three scheduling points.

Paper shapes to reproduce: DNS < INTER < DQA throughput (INTER ≈ +21 %
over DNS, DQA ≈ +29 % over INTER); response times ordered the other way;
PR/AP dispatchers visibly active in DQA's Table 7 column.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from ..core import DistributedQASystem, Strategy, SystemConfig
from ..workload import high_load_count, staggered_arrivals, trec_mix_profiles
from .parallel import run_cells
from .report import TextTable

__all__ = ["LoadBalancingCell", "run_load_balancing", "format_tables_5_6_7"]

PAPER_TABLE5 = {
    (4, "DNS"): 2.64, (4, "INTER"): 3.45, (4, "DQA"): 4.18,
    (8, "DNS"): 5.04, (8, "INTER"): 5.52, (8, "DQA"): 7.77,
    (12, "DNS"): 7.89, (12, "INTER"): 9.71, (12, "DQA"): 12.09,
}
PAPER_TABLE6 = {
    (4, "DNS"): 143.88, (4, "INTER"): 122.51, (4, "DQA"): 111.85,
    (8, "DNS"): 135.30, (8, "INTER"): 118.82, (8, "DQA"): 113.53,
    (12, "DNS"): 132.45, (12, "INTER"): 115.29, (12, "DQA"): 106.03,
}
PAPER_TABLE7 = {
    (4, "INTER"): {"QA": 8},
    (4, "DQA"): {"QA": 17, "PR": 10, "AP": 10},
    (8, "INTER"): {"QA": 15},
    (8, "DQA"): {"QA": 26, "PR": 34, "AP": 33},
    (12, "INTER"): {"QA": 23},
    (12, "DQA"): {"QA": 37, "PR": 43, "AP": 41},
}


@dataclass(frozen=True, slots=True)
class LoadBalancingCell:
    """One (processor count, strategy) measurement, averaged over seeds."""

    n_nodes: int
    strategy: str
    throughput_qpm: float
    mean_response_s: float
    mean_sojourn_s: float
    migrations_qa: float
    migrations_pr: float
    migrations_ap: float


def _lb_cell(
    spec: tuple[int, str, tuple[int, ...], float]
) -> LoadBalancingCell:
    """Pool worker: one (node count, strategy) cell, averaged over seeds."""
    n_nodes, strategy_name, seeds, sigma = spec
    strategy = Strategy[strategy_name]
    n_q = high_load_count(n_nodes)
    thr, resp, soj, mqa, mpr, map_ = [], [], [], [], [], []
    for seed in seeds:
        profiles = trec_mix_profiles(n_q, seed=seed, sigma=sigma)
        arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
        system = DistributedQASystem(
            SystemConfig(n_nodes=n_nodes, strategy=strategy, seed=seed)
        )
        rep = system.run_workload(profiles, arrivals)
        thr.append(rep.throughput_qpm)
        resp.append(rep.mean_response_s)
        soj.append(rep.mean_sojourn_s)
        mqa.append(rep.migrations_qa)
        mpr.append(rep.migrations_pr)
        map_.append(rep.migrations_ap)
    return LoadBalancingCell(
        n_nodes=n_nodes,
        strategy=strategy.value,
        throughput_qpm=float(np.mean(thr)),
        mean_response_s=float(np.mean(resp)),
        mean_sojourn_s=float(np.mean(soj)),
        migrations_qa=float(np.mean(mqa)),
        migrations_pr=float(np.mean(mpr)),
        migrations_ap=float(np.mean(map_)),
    )


def run_load_balancing(
    node_counts: t.Sequence[int] = (4, 8, 12),
    seeds: t.Sequence[int] = (11, 23, 37),
    sigma: float = 0.55,
    jobs: int | str | None = None,
) -> list[LoadBalancingCell]:
    """Run the full three-strategy comparison.

    The nine (N, strategy) cells are independent simulations; with
    ``jobs`` > 1 they run on a process pool and merge in grid order.
    """
    specs = [
        (n_nodes, strategy.name, tuple(seeds), sigma)
        for n_nodes in node_counts
        for strategy in (Strategy.DNS, Strategy.INTER, Strategy.DQA)
    ]
    return run_cells(_lb_cell, specs, jobs=jobs)


def format_tables_5_6_7(cells: t.Sequence[LoadBalancingCell]) -> str:
    """Render Tables 5, 6 and 7 from one set of cells."""
    by_key = {(c.n_nodes, c.strategy): c for c in cells}
    node_counts = sorted({c.n_nodes for c in cells})

    t5 = TextTable(
        "Table 5: system throughput (questions/minute)",
        ["Processors", "DNS", "INTER", "DQA", "paper DNS/INTER/DQA"],
    )
    t6 = TextTable(
        "Table 6: average question response times (seconds)",
        ["Processors", "DNS", "INTER", "DQA", "paper DNS/INTER/DQA"],
    )
    t7 = TextTable(
        "Table 7: migrated questions at the three scheduling points",
        ["Workload", "INTER QA", "DQA QA", "DQA PR", "DQA AP", "paper DQA QA/PR/AP"],
    )
    for n in node_counts:
        t5.add_row(
            n,
            by_key[(n, "DNS")].throughput_qpm,
            by_key[(n, "INTER")].throughput_qpm,
            by_key[(n, "DQA")].throughput_qpm,
            "/".join(
                f"{PAPER_TABLE5[(n, s)]:.2f}" for s in ("DNS", "INTER", "DQA")
            )
            if (n, "DNS") in PAPER_TABLE5
            else "-",
        )
        t6.add_row(
            n,
            by_key[(n, "DNS")].mean_response_s,
            by_key[(n, "INTER")].mean_response_s,
            by_key[(n, "DQA")].mean_response_s,
            "/".join(
                f"{PAPER_TABLE6[(n, s)]:.0f}" for s in ("DNS", "INTER", "DQA")
            )
            if (n, "DNS") in PAPER_TABLE6
            else "-",
        )
        paper7 = PAPER_TABLE7.get((n, "DQA"), {})
        t7.add_row(
            f"{8 * n} questions ({n} procs)",
            by_key[(n, "INTER")].migrations_qa,
            by_key[(n, "DQA")].migrations_qa,
            by_key[(n, "DQA")].migrations_pr,
            by_key[(n, "DQA")].migrations_ap,
            f"{paper7.get('QA', '-')}/{paper7.get('PR', '-')}/{paper7.get('AP', '-')}",
        )
    return "\n\n".join([t5.render(), t6.render(), t7.render()])
