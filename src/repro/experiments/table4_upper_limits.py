"""Table 4 — practical upper limits on processor count (analytical).

Regenerates the paper's bandwidth grid: for each (disk, network)
bandwidth pair, the practical processor limit N_max = T_par/T_seq (Eq 34)
and the corresponding question speedup, compared against the paper's
published values.
"""

from __future__ import annotations

import typing as t

from ..model import (
    PAPER_TABLE4_N,
    PAPER_TABLE4_S,
    IntraLimit,
    ModelParameters,
    upper_limit_grid,
)
from .report import TextTable

__all__ = ["run_table4", "format_table4"]


def run_table4(params: ModelParameters | None = None) -> list[IntraLimit]:
    """Regenerate the analytical Table 4 bandwidth grid."""
    return upper_limit_grid(params or ModelParameters())


def format_table4(grid: t.Sequence[IntraLimit]) -> str:
    """Render Table 4 with per-cell paper comparison and match count."""
    table = TextTable(
        "Table 4: practical upper limits on processors and speedups",
        ["Disk bw", "Net bw", "N", "Paper N", "S", "Paper S"],
    )
    exact = 0
    for cell in grid:
        key = (cell.b_disk_label, cell.b_net_label)
        paper_n = PAPER_TABLE4_N.get(key, 0)
        paper_s = PAPER_TABLE4_S.get(key, 0.0)
        exact += cell.n_max == paper_n
        table.add_row(
            cell.b_disk_label,
            cell.b_net_label,
            cell.n_max,
            paper_n,
            cell.speedup,
            paper_s,
        )
    rendered = table.render()
    return rendered + f"\n{exact}/{len(grid)} N cells match the paper exactly."
