"""Terminal line charts for the figure benchmarks.

The paper's figures are speedup curves; rendering them directly in the
terminal makes `python -m repro.experiments.runner fig8` a self-contained
reproduction (no plotting stack needed offline).
"""

from __future__ import annotations

import typing as t

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: t.Mapping[str, t.Sequence[tuple[float, float]]],
    width: int = 70,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as a fixed-size ASCII line chart.

    Points are plotted with one marker character per series; overlapping
    points show the later series' marker.  Axes are linear and
    auto-scaled to the data's bounding box.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend = []
    for (name, pts), marker in zip(series.items(), _MARKERS):
        legend.append(f"{marker} {name}")
        # Interpolate between consecutive points for visually connected
        # curves.
        ordered = sorted(pts)
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(
                2, int((x1 - x0) / (x_hi - x_lo) * width) if x_hi > x_lo else 2
            )
            for k in range(steps + 1):
                f = k / steps
                plot(x0 + f * (x1 - x0), y0 + f * (y1 - y0), marker)
        for x, y in ordered:
            plot(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.1f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.1f} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 10 + " └" + "─" * width
    )
    lines.append(
        " " * 12 + f"{x_lo:<10.0f}{x_label:^{max(0, width - 20)}}{x_hi:>10.0f}"
    )
    lines.append(" " * 12 + "   ".join(legend))
    return "\n".join(lines)
