"""Extension experiment: does query-cost prediction apply to Q/A?

Tests the paper's related-work claim (Section 1.4): the Cahoon/McKinley/Lu
query-time heuristic predicts *retrieval* cost well, but a Q/A task's cost
is dominated by answer processing, which term statistics cannot see — so
the heuristic "does not apply to question/answering".

We compute, over a question sample: the predicted work units, the actual
simulated PR seconds, and the actual total question seconds, and report
the two Pearson correlations.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from ..nlp.keywords import select_keywords
from ..retrieval.prediction import predict_pr_cost_corpus
from .context import ExperimentContext, default_context
from .report import TextTable

__all__ = ["PredictionResult", "run_prediction", "format_prediction"]


@dataclass(frozen=True, slots=True)
class PredictionResult:
    n_questions: int
    corr_with_pr: float
    corr_with_ap: float
    corr_with_total: float
    #: Mean absolute relative error of a prediction-proportional estimate
    #: of total question time — what a dispatcher would actually pay.
    total_relative_error: float


def run_prediction(
    ctx: ExperimentContext | None = None, n_questions: int = 80
) -> PredictionResult:
    """Correlate the [7] query-cost heuristic with PR/AP/total cost."""
    ctx = ctx or default_context()
    predictions: list[float] = []
    pr_seconds: list[float] = []
    ap_seconds: list[float] = []
    total_seconds: list[float] = []
    for q, prof in zip(
        ctx.questions[:n_questions], ctx.profiles(n_questions)
    ):
        keywords = select_keywords(q.text, ctx.recognizer)
        predictions.append(predict_pr_cost_corpus(ctx.indexed, keywords))
        secs = prof.sequential_module_seconds(ctx.model)
        pr_seconds.append(secs["PR"])
        ap_seconds.append(secs["AP"])
        total_seconds.append(sum(secs.values()))

    def corr(a: list[float], b: list[float]) -> float:
        if np.std(a) == 0 or np.std(b) == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    # Best proportional estimator of total time from the prediction.
    pred = np.asarray(predictions)
    total = np.asarray(total_seconds)
    scale = float(total.mean() / pred.mean()) if pred.mean() > 0 else 0.0
    rel_err = float(np.mean(np.abs(pred * scale - total) / total))

    return PredictionResult(
        n_questions=n_questions,
        corr_with_pr=corr(predictions, pr_seconds),
        corr_with_ap=corr(predictions, ap_seconds),
        corr_with_total=corr(predictions, total_seconds),
        total_relative_error=rel_err,
    )


def format_prediction(result: PredictionResult) -> str:
    """Render the prediction correlations with a data-driven verdict."""
    table = TextTable(
        "Extension: query-cost prediction (related work [7]) applied to Q/A",
        ["Questions", "corr w/ PR", "corr w/ AP", "corr w/ total",
         "total est. error"],
    )
    table.add_row(
        result.n_questions,
        result.corr_with_pr,
        result.corr_with_ap,
        result.corr_with_total,
        f"{result.total_relative_error * 100:.0f} %",
    )
    if result.corr_with_total < 0.6:
        verdict = (
            "\nThe heuristic tracks retrieval cost but not Q/A cost — the"
            "\npaper's reason for load-feedback scheduling instead of a"
            "\npriori query-cost prediction."
        )
    else:
        verdict = (
            "\nOn this synthetic corpus the prediction carries over to total"
            "\ncost more than the paper suggests (our AP work co-varies with"
            "\nretrieved volume); the residual per-question error above still"
            "\nmakes load feedback the safer scheduling signal."
        )
    return table.render() + verdict
