"""Collection-selection experiment — ``repro select``.

Measures the federated collection selector (:mod:`repro.retrieval.selection`)
from both ends of the stack and emits ``BENCH_selection.json``:

* **Real pipeline** — the bench's Zipf workload runs three ways on fresh
  retriever stacks: exhaustive broadcast, **exact** selection (must be
  fingerprint-identical to exhaustive — answers, paragraph ranks, work
  counters — and the summary's ``ok`` flag enforces it), and
  **predictive** selection (mediator-style scoring; may trade recall for
  fan-out).  Per mode: q/s, prune rate, ``retrieval.postings_scanned``
  reduction, and selector quality against ground truth — a collection is
  *useful* for a question iff exhaustive retrieval pulls at least one
  paragraph from it, so precision/recall of the selected set and
  answer agreement are measured, not asserted.

* **Simulated cluster** — a 16 -> 128 node sweep runs the same synthetic
  workload with ``collection_selection`` off and on (the on-profiles
  carry a top-k-by-share routing decision whose keep fraction defaults
  to the *measured* predictive keep rate), attributing traced spans into
  the compute/dispatch/partition-comms categories: the partition-comms
  column must shrink with selection on, because SEND/ISEND/RECV now
  partition over the predicted collections only (Eq 14/15).
"""

from __future__ import annotations

import json
import os
import pathlib
import typing as t
from dataclasses import asdict, dataclass

import numpy as np

from ..core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from ..corpus import CorpusConfig, generate_corpus, generate_questions
from ..nlp.entities import EntityRecognizer
from ..observability.attribution import attribute_workload
from ..observability.names import POSTINGS_SCANNED
from ..qa import QAPipeline, Question
from ..qa.profiles import SyntheticProfileGenerator, SyntheticProfileParams
from ..retrieval import IndexedCorpus
from ..workload import staggered_arrivals
from .parallel import run_cells
from .report import TextTable
from .throughput_bench import _fingerprint, _run_workload

__all__ = [
    "SelectionConfig",
    "run_selection",
    "format_selection",
    "write_selection_json",
    "validate_bench_selection",
]


@dataclass(frozen=True, slots=True)
class SelectionConfig:
    """Knobs of the collection-selection experiment."""

    #: Real-pipeline workload (same construction as ``repro bench``).
    n_questions: int = 120
    n_unique: int = 60
    zipf_exponent: float = 1.1
    corpus_seed: int = 42
    workload_seed: int = 7
    conjunction_cache: int = 256
    warmup: int = 3
    #: Predictive-mode cutoffs (see :class:`CollectionSelector`).
    predictive_top_k: int | None = 4
    predictive_threshold: float = 0.0
    #: Simulated sweep: node counts, questions per node, seed.
    node_counts: tuple[int, ...] = (16, 32, 64, 128)
    sim_questions_per_node: int = 2
    sim_seed: int = 11
    #: Keep fraction of the simulated routing decision; ``None`` = use
    #: the measured predictive keep rate from the real-pipeline half.
    sim_selected_fraction: float | None = None
    #: Parallel sim cells (None = serial; "auto"/int as in other sweeps).
    jobs: int | str | None = None


def _mode_quality(
    selected_sets: t.Sequence[frozenset[int]],
    useful_sets: t.Sequence[frozenset[int]],
) -> dict[str, float]:
    """Mean precision/recall of selected vs useful collections.

    Questions with no useful collection at all (nothing retrieved
    anywhere) are skipped for recall and count precision only when the
    selector kept something — standard mediator-evaluation convention.
    """
    precisions: list[float] = []
    recalls: list[float] = []
    for sel, useful in zip(selected_sets, useful_sets):
        if sel:
            precisions.append(len(sel & useful) / len(sel))
        if useful:
            recalls.append(len(sel & useful) / len(useful))
    return {
        "precision_mean": (
            sum(precisions) / len(precisions) if precisions else 1.0
        ),
        "recall_mean": sum(recalls) / len(recalls) if recalls else 1.0,
    }


def _sim_cell(
    spec: tuple[int, str, float | None, int, int, str]
) -> dict[str, t.Any]:
    """Pool worker: one traced simulated cell, attributed."""
    n_nodes, selection, fraction, seed, qpn, ap_strategy = spec
    n_q = qpn * n_nodes
    params = SyntheticProfileParams(selected_fraction=fraction)
    profiles = SyntheticProfileGenerator(params=params, seed=seed).generate_many(
        n_q
    )
    arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
    system = DistributedQASystem(
        SystemConfig(
            n_nodes=n_nodes,
            strategy=Strategy.DQA,
            seed=seed,
            trace=True,
            collection_selection=selection,
            policy=TaskPolicy(
                ap_strategy=PartitioningStrategy[ap_strategy]
            ),
        )
    )
    report = system.run_workload(profiles, arrivals)
    att = attribute_workload(system.spans, system.metrics, report, system.config)
    means = att.category_means()
    return {
        "n_nodes": n_nodes,
        "collection_selection": selection,
        "selected_fraction": fraction,
        "ap_strategy": ap_strategy,
        "n_questions": n_q,
        "makespan_s": report.makespan_s,
        "mean_response_s": report.mean_response_s,
        "partition_comms_mean_s": means["partition_comms"],
        "dispatch_mean_s": means["dispatch"],
        "attribution_max_sum_error_s": att.max_sum_error(),
    }


def run_selection(config: SelectionConfig | None = None) -> dict[str, t.Any]:
    """Run the full experiment and assemble ``BENCH_selection.json``."""
    config = config or SelectionConfig()
    corpus = generate_corpus(CorpusConfig(seed=config.corpus_seed))
    indexed = IndexedCorpus(corpus, conjunction_cache=config.conjunction_cache)
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )

    questions = generate_questions(corpus)
    unique = questions[: max(1, min(config.n_unique, len(questions)))]
    rng = np.random.default_rng(config.workload_seed)
    weights = 1.0 / np.arange(1, len(unique) + 1) ** config.zipf_exponent
    weights /= weights.sum()
    picks = rng.choice(len(unique), size=config.n_questions, p=weights)
    workload = [(unique[i].qid, unique[i].text) for i in picks]

    def fresh(selector_mode: str | None) -> QAPipeline:
        stack = indexed.reconfigured(
            conjunction_cache=config.conjunction_cache
        )
        selector = (
            None
            if selector_mode is None
            else stack.selector(
                mode=selector_mode,
                top_k=(
                    config.predictive_top_k
                    if selector_mode == "predictive"
                    else None
                ),
                threshold=(
                    config.predictive_threshold
                    if selector_mode == "predictive"
                    else 0.0
                ),
            )
        )
        return QAPipeline(
            stack, recognizer, use_term_index=True, selector=selector
        )

    # -- exhaustive broadcast: the reference column + ground truth ---------
    exhaustive = fresh(None)
    exh_results, exh_stats = _run_workload(
        exhaustive, workload, config.warmup
    )
    exh_fingerprints = [_fingerprint(r) for r in exh_results]

    # Ground truth per workload item: which collections actually
    # contribute paragraphs (recomputed outside the timed runs).
    useful_sets: list[frozenset[int]] = []
    processed_cache: dict[str, t.Any] = {}
    for qid, text in workload:
        processed = processed_cache.get(text)
        if processed is None:
            processed = exhaustive.qp.process(Question(qid=qid, text=text))
            processed_cache[text] = processed
        pr = exhaustive.pr.retrieve(processed)
        useful_sets.append(
            frozenset(
                w.collection_id for w in pr.per_collection if w.n_paragraphs
            )
        )

    runs: dict[str, dict[str, t.Any]] = {"exhaustive": exh_stats}
    quality: dict[str, dict[str, t.Any]] = {}
    mismatches: dict[str, list[int]] = {}
    keep_rates: dict[str, float] = {}
    for mode in ("exact", "predictive"):
        pipeline = fresh(mode)
        results, stats = _run_workload(pipeline, workload, config.warmup)
        bad = [
            i
            for i, r in enumerate(results)
            if _fingerprint(r) != exh_fingerprints[i]
        ]
        if bad:
            mismatches[mode] = bad[:20]
        selector = pipeline.pr.selector
        selected_sets: list[frozenset[int]] = []
        prune_rates: list[float] = []
        fallbacks = 0
        for _, text in workload:
            decision = selector.select(
                list(processed_cache[text].keywords)
            )
            selected_sets.append(frozenset(decision.selected))
            prune_rates.append(decision.prune_rate)
            fallbacks += decision.fallback
        agreement = sum(
            1
            for a, b in zip(exh_results, results)
            if [str(ans) for ans in a.answers] == [str(ans) for ans in b.answers]
        )
        exh_postings = sum(r.work[POSTINGS_SCANNED] for r in exh_results)
        mode_postings = sum(r.work[POSTINGS_SCANNED] for r in results)
        stats["postings_scanned_total"] = mode_postings
        stats["postings_scanned_reduction"] = (
            1.0 - mode_postings / exh_postings if exh_postings else 0.0
        )
        stats["prune_rate_mean"] = (
            sum(prune_rates) / len(prune_rates) if prune_rates else 0.0
        )
        runs[mode] = stats
        keep_rates[mode] = 1.0 - stats["prune_rate_mean"]
        quality[mode] = {
            **_mode_quality(selected_sets, useful_sets),
            "answer_agreement": agreement / len(workload),
            "fallbacks": fallbacks,
            "sketch_bytes": selector.sketch_bytes(),
        }
    runs["exhaustive"]["postings_scanned_total"] = sum(
        r.work[POSTINGS_SCANNED] for r in exh_results
    )

    # -- simulated sweep: partition-comms with selection off vs on ----------
    fraction = config.sim_selected_fraction
    if fraction is None:
        fraction = round(keep_rates["predictive"], 2)
    specs: list[tuple[int, str, float | None, int, int, str]] = []
    for n in config.node_counts:
        specs.append((n, "off", fraction, config.sim_seed, config.sim_questions_per_node, "RECV"))
        specs.append((n, "sketch", fraction, config.sim_seed, config.sim_questions_per_node, "RECV"))
    cells = run_cells(_sim_cell, specs, jobs=config.jobs)
    by_key = {
        (c["n_nodes"], c["collection_selection"]): c for c in cells
    }
    sim_rows = []
    for n in config.node_counts:
        off = by_key[(n, "off")]
        on = by_key[(n, "sketch")]
        sim_rows.append(
            {
                "n_nodes": n,
                "off_partition_comms_mean_s": off["partition_comms_mean_s"],
                "on_partition_comms_mean_s": on["partition_comms_mean_s"],
                "partition_comms_reduction": (
                    1.0
                    - on["partition_comms_mean_s"]
                    / off["partition_comms_mean_s"]
                    if off["partition_comms_mean_s"]
                    else 0.0
                ),
                "off_mean_response_s": off["mean_response_s"],
                "on_mean_response_s": on["mean_response_s"],
            }
        )
    attribution_ok = all(
        c["attribution_max_sum_error_s"] < 1e-6 for c in cells
    )
    comms_shrinks = all(
        row["partition_comms_reduction"] > 0.0 for row in sim_rows
    )

    exact_identical = "exact" not in mismatches
    return {
        "schema": "selection-v1",
        "cpu_count": os.cpu_count(),
        "config": {
            **asdict(config),
            "sim_selected_fraction_effective": fraction,
        },
        "workload": {
            "n_questions": len(workload),
            "n_unique": len(unique),
            "zipf_exponent": config.zipf_exponent,
        },
        "runs": runs,
        "quality": quality,
        "equivalence": {
            "exact_identical": exact_identical,
            "n_checked": len(workload),
            "mismatches": mismatches,
        },
        "simulated": {
            "cells": cells,
            "rows": sim_rows,
            "comms_shrinks": comms_shrinks,
            "attribution_ok": attribution_ok,
        },
        "ok": exact_identical and attribution_ok,
    }


def format_selection(summary: dict[str, t.Any]) -> str:
    """Human-readable report of the selection experiment."""
    wl = summary["workload"]
    lines = [
        "Federated collection selection — prune the PR fan-out",
        "=" * 53,
        f"workload: {wl['n_questions']} questions over {wl['n_unique']}"
        f" unique (Zipf s={wl['zipf_exponent']})",
        "",
    ]
    table = TextTable(
        "Selector modes on the real pipeline",
        ["Mode", "q/s", "prune %", "postings", "reduction"],
    )
    runs = summary["runs"]
    for mode in ("exhaustive", "exact", "predictive"):
        s = runs[mode]
        table.add_row(
            mode,
            f"{s['questions_per_sec']:.2f}",
            f"{s.get('prune_rate_mean', 0.0) * 100:.1f}",
            f"{s['postings_scanned_total']:,.0f}",
            f"{s.get('postings_scanned_reduction', 0.0) * 100:.1f} %",
        )
    lines.append(table.render())
    lines.append("")

    qtable = TextTable(
        "Selector quality vs exhaustive search",
        ["Mode", "precision", "recall", "answers agree", "fallbacks"],
    )
    for mode, q in summary["quality"].items():
        qtable.add_row(
            mode,
            f"{q['precision_mean']:.3f}",
            f"{q['recall_mean']:.3f}",
            f"{q['answer_agreement'] * 100:.1f} %",
            q["fallbacks"],
        )
    lines.append(qtable.render())
    lines.append("")

    stable = TextTable(
        "Simulated sweep: partition-comms attribution, selection off vs on",
        ["N", "off s", "on s", "reduction"],
    )
    for row in summary["simulated"]["rows"]:
        stable.add_row(
            row["n_nodes"],
            f"{row['off_partition_comms_mean_s']:.4f}",
            f"{row['on_partition_comms_mean_s']:.4f}",
            f"{row['partition_comms_reduction'] * 100:.1f} %",
        )
    lines.append(stable.render())
    lines.append("")
    eq = summary["equivalence"]
    lines.append(
        f"exact mode bit-identical to exhaustive: {eq['exact_identical']}"
        f" over {eq['n_checked']} questions; ok={summary['ok']}"
    )
    return "\n".join(lines)


def write_selection_json(
    summary: dict[str, t.Any], path: str | pathlib.Path = "BENCH_selection.json"
) -> pathlib.Path:
    """Write the summary as JSON; returns the path written."""
    out = pathlib.Path(path)
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return out


def validate_bench_selection(summary: dict[str, t.Any]) -> None:
    """Schema contract for ``BENCH_selection.json`` (CI / trend tooling).

    Raises :class:`ValueError` on the first violation.
    """
    if summary.get("schema") != "selection-v1":
        raise ValueError(
            f"unexpected schema {summary.get('schema')!r}, want 'selection-v1'"
        )
    for key in ("config", "workload", "runs", "quality", "equivalence",
                "simulated", "ok"):
        if key not in summary:
            raise ValueError(f"missing top-level key {key!r}")
    runs = summary["runs"]
    for mode in ("exhaustive", "exact", "predictive"):
        if mode not in runs:
            raise ValueError(f"runs missing mode {mode!r}")
        for key in ("questions_per_sec", "wall_s", "postings_scanned_total"):
            if key not in runs[mode]:
                raise ValueError(f"runs[{mode}] missing {key!r}")
    for mode in ("exact", "predictive"):
        if "postings_scanned_reduction" not in runs[mode]:
            raise ValueError(f"runs[{mode}] missing postings reduction")
        q = summary["quality"].get(mode)
        if q is None:
            raise ValueError(f"quality missing mode {mode!r}")
        for key in ("precision_mean", "recall_mean", "answer_agreement"):
            if key not in q:
                raise ValueError(f"quality[{mode}] missing {key!r}")
    eq = summary["equivalence"]
    if not eq.get("exact_identical", False):
        raise ValueError(
            "artifact records an exact-mode divergence from exhaustive search"
        )
    sim = summary["simulated"]
    for key in ("cells", "rows", "comms_shrinks", "attribution_ok"):
        if key not in sim:
            raise ValueError(f"simulated missing {key!r}")
    for row in sim["rows"]:
        for key in (
            "n_nodes",
            "off_partition_comms_mean_s",
            "on_partition_comms_mean_s",
            "partition_comms_reduction",
        ):
            if key not in row:
                raise ValueError(f"simulated row missing {key!r}")
    if not sim["attribution_ok"]:
        raise ValueError("attribution sum invariant violated in a sim cell")
    if not summary["ok"]:
        raise ValueError("summary records ok=false")
