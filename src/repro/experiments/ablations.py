"""Ablation studies beyond the paper's headline tables.

The paper motivates several design choices without isolating them; these
ablations quantify each one on the simulated cluster:

* **Dispatcher ablation** — DQA with the PR dispatcher disabled, with the
  AP dispatcher disabled, and with partitioning disabled, against full
  DQA and the INTER/DNS baselines (which scheduling point buys what).
* **Concurrency sweep** — per-node admitted-question limit 1..8,
  reproducing Section 4.2's observation that 2-3 simultaneous questions
  beat sequential execution while >4 collapses under memory pressure.
* **Migration-threshold sweep** — the question dispatcher's
  useless-migration guard from 0 (migrate on any difference) upward.
* **Under-load margin sweep** — Section 4.2's response-time versus
  throughput trade-off for the partitioning conditions.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, replace

import numpy as np

from ..core import DistributedQASystem, Strategy, SystemConfig, TaskPolicy
from ..core.node import NodeConfig
from ..workload import high_load_count, staggered_arrivals, trec_mix_profiles
from .context import complex_profiles
from .parallel import run_cells
from .report import TextTable

__all__ = [
    "run_dispatcher_ablation",
    "format_dispatcher_ablation",
    "run_concurrency_sweep",
    "format_concurrency_sweep",
    "run_threshold_sweep",
    "format_threshold_sweep",
    "run_margin_sweep",
    "format_margin_sweep",
]


@dataclass(frozen=True, slots=True)
class AblationRow:
    label: str
    throughput_qpm: float
    mean_response_s: float


def _run_high_load(
    config: SystemConfig,
    n_nodes: int,
    seeds: t.Sequence[int],
    sigma: float = 0.55,
) -> tuple[float, float]:
    n_q = high_load_count(n_nodes)
    thr, resp = [], []
    for seed in seeds:
        profiles = trec_mix_profiles(n_q, seed=seed, sigma=sigma)
        arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
        rep = DistributedQASystem(config).run_workload(profiles, arrivals)
        thr.append(rep.throughput_qpm)
        resp.append(rep.mean_response_s)
    return float(np.mean(thr)), float(np.mean(resp))


def _high_load_cell(
    spec: tuple[str, SystemConfig, int, tuple[int, ...]]
) -> AblationRow:
    """Pool worker: one labelled high-load variant -> its ablation row."""
    label, config, n_nodes, seeds = spec
    thr, resp = _run_high_load(config, n_nodes, seeds)
    return AblationRow(label, thr, resp)


def run_dispatcher_ablation(
    n_nodes: int = 8,
    seeds: t.Sequence[int] = (11, 23, 37),
    jobs: int | str | None = None,
) -> list[AblationRow]:
    """Measure each scheduling point's contribution at high load."""
    variants: list[tuple[str, SystemConfig]] = [
        ("DNS (no dispatchers)", SystemConfig(n_nodes=n_nodes, strategy=Strategy.DNS)),
        ("INTER (QA dispatcher only)",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.INTER)),
        ("DQA minus PR dispatcher",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA,
                      policy=TaskPolicy(enable_pr_dispatch=False))),
        ("DQA minus AP dispatcher",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA,
                      policy=TaskPolicy(enable_ap_dispatch=False))),
        ("DQA minus partitioning",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA,
                      policy=TaskPolicy(enable_partitioning=False))),
        ("DQA (full)", SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA)),
    ]
    specs = [
        (label, config, n_nodes, tuple(seeds)) for label, config in variants
    ]
    return run_cells(_high_load_cell, specs, jobs=jobs)


def format_dispatcher_ablation(rows: t.Sequence[AblationRow]) -> str:
    """Render the dispatcher-ablation rows as a text table."""
    table = TextTable(
        "Ablation: scheduling points at high load (8 nodes)",
        ["Variant", "Throughput (q/min)", "Mean response (s)"],
    )
    for r in rows:
        table.add_row(r.label, r.throughput_qpm, r.mean_response_s)
    return table.render()


def run_concurrency_sweep(
    caps: t.Sequence[int] = (1, 2, 3, 4, 5, 6, 8),
    n_nodes: int = 4,
    seeds: t.Sequence[int] = (11, 23),
    jobs: int | str | None = None,
) -> list[AblationRow]:
    """Section 4.2's simultaneous-question experiment, repeated in full."""
    specs = [
        (
            f"{cap} simultaneous",
            SystemConfig(
                n_nodes=n_nodes,
                strategy=Strategy.DNS,
                node=NodeConfig(max_concurrent_questions=cap),
            ),
            n_nodes,
            tuple(seeds),
        )
        for cap in caps
    ]
    return run_cells(_high_load_cell, specs, jobs=jobs)


def format_concurrency_sweep(rows: t.Sequence[AblationRow]) -> str:
    """Render the concurrency-sweep rows as a text table."""
    table = TextTable(
        "Ablation: per-node simultaneous questions (throughput peak at 2-4,"
        " memory thrash beyond)",
        ["Concurrency", "Throughput (q/min)", "Mean response (s)"],
    )
    for r in rows:
        table.add_row(r.label, r.throughput_qpm, r.mean_response_s)
    return table.render()


def _threshold_cell(
    spec: tuple[float, int, tuple[int, ...]]
) -> AblationRow:
    """Pool worker: one migration-threshold setting -> its ablation row."""
    th, n_nodes, seeds = spec
    config = SystemConfig(n_nodes=n_nodes, strategy=Strategy.INTER)
    n_q = high_load_count(n_nodes)
    thr, resp = [], []
    for seed in seeds:
        profiles = trec_mix_profiles(n_q, seed=seed)
        arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
        system = DistributedQASystem(config)
        system.question_dispatcher.migration_threshold = th
        rep = system.run_workload(profiles, arrivals)
        thr.append(rep.throughput_qpm)
        resp.append(rep.mean_response_s)
    return AblationRow(
        f"threshold {th:.3f}", float(np.mean(thr)), float(np.mean(resp))
    )


def run_threshold_sweep(
    thresholds: t.Sequence[float] = (0.0, 0.334, 0.668, 1.336, 2.672),
    n_nodes: int = 8,
    seeds: t.Sequence[int] = (11, 23),
    jobs: int | str | None = None,
) -> list[AblationRow]:
    """Vary the question dispatcher's useless-migration guard."""
    specs = [(th, n_nodes, tuple(seeds)) for th in thresholds]
    return run_cells(_threshold_cell, specs, jobs=jobs)


def format_threshold_sweep(rows: t.Sequence[AblationRow]) -> str:
    """Render the threshold-sweep rows as a text table."""
    table = TextTable(
        "Ablation: question-migration threshold (INTER, 8 nodes)",
        ["Threshold (load units)", "Throughput (q/min)", "Mean response (s)"],
    )
    for r in rows:
        table.add_row(r.label, r.throughput_qpm, r.mean_response_s)
    return table.render()


def run_margin_sweep(
    margins: t.Sequence[float] = (0.5, 0.8, 1.1, 1.5, 2.0, 3.0),
    n_nodes: int = 8,
    n_questions: int = 10,
    seed: int = 3,
    jobs: int | str | None = None,
) -> list[tuple[float, float, float]]:
    """Under-load margin vs low-load response time and high-load throughput.

    Returns (margin, low-load mean response, high-load throughput) rows —
    the Section 4.2 trade-off: larger margins partition more eagerly,
    cutting individual latencies but risking throughput at load.
    """
    profiles = complex_profiles(n_questions, seed=seed)
    specs = [(margin, n_nodes, tuple(profiles)) for margin in margins]
    return run_cells(_margin_cell, specs, jobs=jobs)


def _margin_cell(
    spec: tuple[float, int, tuple[t.Any, ...]]
) -> tuple[float, float, float]:
    """Pool worker: one under-load margin -> (margin, response, throughput)."""
    margin, n_nodes, profiles = spec
    policy = TaskPolicy(
        pr_underload_margin=margin, ap_underload_margin=margin
    )
    # Low load: questions one at a time.
    resp = []
    for prof in profiles:
        system = DistributedQASystem(
            SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA, policy=policy)
        )
        rep = system.run_workload([prof])
        resp.append(rep.results[0].response_time)
    # High load.
    thr, _ = _run_high_load(
        SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA, policy=policy),
        n_nodes,
        seeds=(11,),
    )
    return (margin, float(np.mean(resp)), thr)


def format_margin_sweep(rows: t.Sequence[tuple[float, float, float]]) -> str:
    """Render the margin-sweep rows as a text table."""
    table = TextTable(
        "Ablation: under-load margin trade-off (8 nodes)",
        ["Margin", "Low-load response (s)", "High-load throughput (q/min)"],
    )
    for margin, resp, thr in rows:
        table.add_row(margin, resp, thr)
    return table.render()
