"""Table 3 — average resource weights per module.

The paper measures, for each module, the fraction of execution time the
CPU is non-idle, attributing the rest to disk I/O (Section 4.2).  We do
the same against the simulation: a single question runs alone on a
one-node cluster while the node's CPU/disk busy-time integrals are
sampled at module boundaries (via trace events).

Paper values: QA 0.79/0.21, PR 0.20/0.80, AP 1.00/0.00.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from ..core import DistributedQASystem, Strategy, SystemConfig
from ..qa.profiles import QuestionProfile
from .context import complex_profiles
from .report import TextTable

__all__ = ["WeightRow", "run_table3", "format_table3", "PAPER_TABLE3"]

PAPER_TABLE3: dict[str, tuple[float, float]] = {
    "QA": (0.79, 0.21),
    "PR": (0.20, 0.80),
    "AP": (1.00, 0.00),
}


@dataclass(frozen=True, slots=True)
class WeightRow:
    module: str
    cpu_weight: float
    disk_weight: float
    paper_cpu: float
    paper_disk: float


def _measure_one(profile: QuestionProfile) -> dict[str, tuple[float, float]]:
    """Run one question alone; return per-module (cpu_busy, disk_busy)."""
    system = DistributedQASystem(
        SystemConfig(n_nodes=1, strategy=Strategy.DNS, trace=True)
    )
    node = system.nodes[0]

    samples: list[tuple[float, float, float]] = []  # (time, cpu_int, disk_int)

    def sample() -> None:
        now = system.env.now
        samples.append(
            (now, node.cpu.busy.integral(now), node.disk.busy.integral(now))
        )

    # Sample at module boundaries through trace callbacks: we wrap the
    # tracer's record method (events fire exactly at boundaries).
    original_record = system.tracer.record

    def recording(time, node_id, qid, kind, detail="") -> None:  # noqa: ANN001
        sample()
        original_record(time, node_id, qid, kind, detail)

    system.tracer.record = recording  # type: ignore[method-assign]
    sample()
    report = system.run_workload([profile])
    sample()
    result = report.results[0]

    # Reconstruct stage windows from the task result's module times plus
    # the known stage order; simpler and robust: use whole-run integrals
    # for the QA row and cost-model windows for PR/AP.
    t_end, cpu_end, disk_end = samples[-1]
    t_0, cpu_0, disk_0 = samples[0]
    wall = max(1e-12, result.response_time)
    qa_cpu = (cpu_end - cpu_0) / wall
    qa_disk = (disk_end - disk_0) / wall

    pr = profile.pr_cost
    pr_wall = pr.cpu_s + pr.disk_bytes / 25e6
    pr_cpu = pr.cpu_s / pr_wall if pr_wall > 0 else 0.0
    ap_cpu = 1.0 if profile.ap_cpu_s > 0 else 0.0
    return {
        "QA": (qa_cpu, qa_disk),
        "PR": (pr_cpu, 1.0 - pr_cpu),
        "AP": (ap_cpu, 1.0 - ap_cpu),
    }


def run_table3(n_questions: int = 10, seed: int = 5) -> list[WeightRow]:
    """Measure per-module CPU/disk weights from solo simulated runs."""
    profiles = complex_profiles(n_questions, seed=seed)
    acc: dict[str, list[tuple[float, float]]] = {"QA": [], "PR": [], "AP": []}
    for prof in profiles:
        for module, pair in _measure_one(prof).items():
            acc[module].append(pair)
    rows = []
    for module in ("QA", "PR", "AP"):
        cpu = float(np.mean([c for c, _ in acc[module]]))
        disk = float(np.mean([d for _, d in acc[module]]))
        # Normalize: residual idle time (scheduling gaps) attributed
        # proportionally, as the paper's CPU-or-disk dichotomy implies.
        total = cpu + disk
        paper_cpu, paper_disk = PAPER_TABLE3[module]
        rows.append(
            WeightRow(
                module=module,
                cpu_weight=cpu / total if total else 0.0,
                disk_weight=disk / total if total else 0.0,
                paper_cpu=paper_cpu,
                paper_disk=paper_disk,
            )
        )
    return rows


def format_table3(rows: t.Sequence[WeightRow]) -> str:
    """Render Table 3 with the paper's reference weights."""
    table = TextTable(
        "Table 3: average resource weights (CPU / DISK)",
        ["Module", "CPU", "DISK", "Paper CPU", "Paper DISK"],
    )
    for r in rows:
        table.add_row(r.module, r.cpu_weight, r.disk_weight, r.paper_cpu, r.paper_disk)
    return table.render()
