"""Table 1 — example answers returned by the Q/A system.

The paper's Table 1 shows FALCON's short/long answers for four TREC
questions.  We regenerate the analogue: real pipeline answers (short and
long windows) for a sample of generated questions with known ground truth,
reporting whether the expected answer appears in the returned window.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from .context import ExperimentContext, default_context
from .report import TextTable

__all__ = ["ExampleAnswer", "run_table1", "format_table1"]


@dataclass(frozen=True, slots=True)
class ExampleAnswer:
    question: str
    expected: str
    answer_text: str
    short: str
    long: str
    correct: bool
    answer_type: str


def run_table1(
    ctx: ExperimentContext | None = None, n_examples: int = 6
) -> list[ExampleAnswer]:
    """Answer a sample of questions with the real pipeline."""
    ctx = ctx or default_context()
    out: list[ExampleAnswer] = []
    # Spread examples across relations for variety.
    step = max(1, len(ctx.questions) // n_examples)
    for q in ctx.questions[:: step][:n_examples]:
        result = ctx.pipeline.answer(q.text, qid=q.qid)
        best = result.best
        correct = any(
            q.expected_answer.lower() in a.text.lower()
            or a.text.lower() in q.expected_answer.lower()
            for a in result.answers
        )
        out.append(
            ExampleAnswer(
                question=q.text,
                expected=q.expected_answer,
                answer_text=best.text if best else "(no answer)",
                short=best.short if best else "",
                long=best.long if best else "",
                correct=correct,
                answer_type=q.answer_type.value,
            )
        )
    return out


def format_table1(examples: t.Sequence[ExampleAnswer]) -> str:
    """Render the example answers in the Table 1 style."""
    table = TextTable(
        "Table 1 analogue: example answers (short window, 50 bytes)",
        ["Question", "Type", "Expected", "Answer", "Top-5 hit"],
    )
    for ex in examples:
        table.add_row(
            ex.question[:48],
            ex.answer_type,
            ex.expected[:20],
            ex.answer_text[:24],
            "yes" if ex.correct else "NO",
        )
    return table.render()
