"""Table 11 and Figure 10 — comparing the partitioning strategies.

Table 11: AP-module speedup under SEND / ISEND / RECV on 4/8/12-node
clusters (paper: SEND clearly worst, RECV best, ISEND close behind).

Figure 10: AP speedup of RECV against chunk size (5..100 paragraphs) at 4
and 8 processors — an interior optimum (the paper finds ~40): small
chunks pay per-chunk answer-extraction and connection overhead, big
chunks revive the uneven-granularity problem.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, replace

import numpy as np

from ..core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from ..qa.profiles import QuestionProfile
from .context import complex_profiles
from .parallel import run_cells
from .report import TextTable, format_series

__all__ = [
    "run_table11",
    "format_table11",
    "run_fig10",
    "format_fig10",
    "ap_speedups",
]

PAPER_TABLE11 = {
    (4, "SEND"): 2.71, (4, "ISEND"): 3.61, (4, "RECV"): 3.73,
    (8, "SEND"): 4.78, (8, "ISEND"): 6.25, (8, "RECV"): 6.58,
    (12, "SEND"): 7.17, (12, "ISEND"): 9.22, (12, "RECV"): 9.87,
}


def _mean_ap_time(
    n_nodes: int,
    profiles: t.Sequence[QuestionProfile],
    ap_strategy: PartitioningStrategy,
    chunk: int = 40,
) -> float:
    """Mean AP critical-path time, one question at a time."""
    times = []
    for prof in profiles:
        policy = TaskPolicy(
            ap_strategy=ap_strategy, ap_chunk_paragraphs=chunk
        )
        system = DistributedQASystem(
            SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA, policy=policy)
        )
        rep = system.run_workload([prof])
        times.append(rep.results[0].module_times["AP"])
    return float(np.mean(times))


def ap_speedups(
    n_nodes: int,
    profiles: t.Sequence[QuestionProfile],
    strategies: t.Sequence[PartitioningStrategy],
    chunk: int = 40,
) -> dict[str, float]:
    """AP speedup (1-node AP time / N-node AP time) per strategy."""
    base = _mean_ap_time(1, profiles, PartitioningStrategy.RECV, chunk)
    return {
        s.value: base / _mean_ap_time(n_nodes, profiles, s, chunk)
        for s in strategies
    }


@dataclass(frozen=True, slots=True)
class Table11Row:
    n_nodes: int
    send: float
    isend: float
    recv: float


def _ap_time_cell(
    spec: tuple[int, str, tuple[QuestionProfile, ...], int]
) -> float:
    """Pool worker: mean AP time for one (nodes, strategy, chunk) cell."""
    n_nodes, strategy_name, profiles, chunk = spec
    return _mean_ap_time(
        n_nodes, profiles, PartitioningStrategy[strategy_name], chunk
    )


def run_table11(
    node_counts: t.Sequence[int] = (4, 8, 12),
    n_questions: int = 15,
    seed: int = 3,
    jobs: int | str | None = None,
) -> list[Table11Row]:
    """Measure SEND/ISEND/RECV answer-processing speedups (Table 11).

    The 1-node baseline is a single deterministic measurement, so it is
    computed once and shared by every row (the old per-row recompute
    produced the identical number three times); the (N, strategy) grid
    then runs as independent cells, in parallel when ``jobs`` > 1.
    """
    profiles = tuple(complex_profiles(n_questions, seed=seed))
    strategy_names = ("SEND", "ISEND", "RECV")
    specs = [(1, "RECV", profiles, 40)] + [
        (n, s, profiles, 40) for n in node_counts for s in strategy_names
    ]
    times = run_cells(_ap_time_cell, specs, jobs=jobs)
    base = times[0]
    grid = iter(times[1:])
    rows = []
    for n in node_counts:
        sp = {s: base / next(grid) for s in strategy_names}
        rows.append(
            Table11Row(n_nodes=n, send=sp["SEND"], isend=sp["ISEND"], recv=sp["RECV"])
        )
    return rows


def format_table11(rows: t.Sequence[Table11Row]) -> str:
    """Render Table 11 with the paper's reference column."""
    table = TextTable(
        "Table 11: answer-processing speedup per partitioning strategy",
        ["Procs", "SEND", "ISEND", "RECV", "paper SEND/ISEND/RECV"],
    )
    for r in rows:
        paper = "/".join(
            f"{PAPER_TABLE11[(r.n_nodes, s)]:.2f}"
            for s in ("SEND", "ISEND", "RECV")
        )
        table.add_row(r.n_nodes, r.send, r.isend, r.recv, paper)
    return table.render()


def run_fig10(
    chunk_sizes: t.Sequence[int] = (5, 10, 20, 40, 60, 80, 100),
    node_counts: t.Sequence[int] = (4, 8),
    n_questions: int = 12,
    seed: int = 3,
    jobs: int | str | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """RECV AP speedup vs chunk size (Figure 10's two curves)."""
    profiles = tuple(complex_profiles(n_questions, seed=seed))
    specs = [(1, "RECV", profiles, 40)] + [
        (n, "RECV", profiles, chunk)
        for n in node_counts
        for chunk in chunk_sizes
    ]
    times = run_cells(_ap_time_cell, specs, jobs=jobs)
    base = times[0]
    grid = iter(times[1:])
    series: dict[str, list[tuple[float, float]]] = {}
    for n in node_counts:
        series[f"{n} processors"] = [
            (float(chunk), base / next(grid)) for chunk in chunk_sizes
        ]
    return series


def format_fig10(series: dict[str, list[tuple[float, float]]]) -> str:
    """Render the Figure 10 chunk-size series as aligned columns."""
    return format_series(
        "Figure 10: AP speedup for RECV vs paragraph chunk size",
        series,
        x_label="chunk",
        y_label="speedup",
    )
