"""End-to-end throughput benchmark — the perf-regression harness.

Runs a Zipf-popular question workload through the *real* Q/A pipeline
three times — on the re-tokenize reference path (term index off, naive
set-intersection retrieval, no conjunction cache), on the optimized hot
path, and on indexes **attached** from a serialized packed payload (the
path parallel workers take) — and emits ``BENCH_throughput.json`` with
questions/sec, per-module p50/p95 latency, index build/serialize/attach
times, and the packed-vs-dict memory footprint, so every future PR has a
perf trajectory to compare against.

The three runs must be **bit-identical** in answers, paragraph ranks, and
cost-accounting fields (``postings_scanned``/``doc_bytes_read`` surface in
``QAResult.work``); any divergence is a correctness failure, reported in
the summary and turned into a non-zero exit by the CLI.  Timing is never a
failure condition — CI machines are noisy — only equivalence is.

Run it with ``python -m repro bench`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import pathlib
import pickle
import time
import typing as t
from dataclasses import asdict, dataclass

import numpy as np

from ..corpus import CorpusConfig, generate_corpus, generate_questions
from ..nlp.entities import EntityRecognizer
from ..nlp.vocabulary import Vocabulary
from ..observability.names import POSTINGS_SCANNED
from ..qa import QAPipeline, QAResult, Question
from ..retrieval import (
    IndexedCorpus,
    attach_payload,
    indexes_to_payload,
    memory_footprint,
)
from ..workload.metrics import percentile

__all__ = [
    "BenchConfig",
    "run_throughput_bench",
    "format_throughput",
    "validate_bench_throughput",
    "write_bench_json",
]

_MODULES = ("qp", "pr", "ps", "po", "ap")


@dataclass(frozen=True, slots=True)
class BenchConfig:
    """Knobs of the throughput benchmark."""

    #: Total questions in the workload (with Zipf-repeated populars).
    n_questions: int = 120
    #: Distinct questions the workload draws from.
    n_unique: int = 60
    #: Zipf popularity exponent of the question distribution.
    zipf_exponent: float = 1.1
    #: Corpus generation seed.
    corpus_seed: int = 42
    #: Workload sampling seed.
    workload_seed: int = 7
    #: Conjunction-cache capacity of the optimized run.
    conjunction_cache: int = 256
    #: Warm-up questions per run (excluded from timing).
    warmup: int = 3
    #: Batch sizes of the batched-execution columns (empty = skip).  Each
    #: size runs the same workload through ``QAPipeline.answer_batch`` on
    #: a fresh retriever stack and must fingerprint-match the serial
    #: optimized run.
    batch_sizes: tuple[int, ...] = (1, 4, 8, 16, 32)
    #: Run the exact-selection column (a fresh optimized stack routed by
    #: an exact :class:`~repro.retrieval.selection.CollectionSelector`) —
    #: fingerprint-gated against the serial optimized run, reporting the
    #: measured prune rate.
    selection: bool = True


def _percentile_ms(samples: t.Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` (seconds), in milliseconds."""
    return percentile(samples, q) * 1e3


def _fingerprint(result: QAResult) -> tuple[t.Any, ...]:
    """Everything that must match bit-for-bit across the two runs."""
    return (
        tuple(
            (a.text, a.short, a.long, a.score, a.paragraph_key, a.entity_type.value)
            for a in result.answers
        ),
        result.n_retrieved,
        result.n_accepted,
        result.paragraph_ranks,
        tuple(sorted(result.work.items())),
    )


def _run_workload(
    pipeline: QAPipeline,
    workload: t.Sequence[tuple[int, str]],
    warmup: int,
) -> tuple[list[QAResult], dict[str, t.Any]]:
    """Answer every workload question, collecting per-module latencies."""
    for qid, text in workload[:warmup]:
        pipeline.answer(text, qid=qid)
    per_module: dict[str, list[float]] = {m: [] for m in _MODULES}
    per_question: list[float] = []
    results: list[QAResult] = []
    t0 = time.perf_counter()
    for qid, text in workload:
        r = pipeline.answer(text, qid=qid)
        results.append(r)
        for m in _MODULES:
            per_module[m].append(getattr(r.timings, m))
        per_question.append(r.timings.total)
    wall_s = time.perf_counter() - t0
    stats = {
        "wall_s": wall_s,
        "questions_per_sec": len(workload) / wall_s if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": _percentile_ms(per_question, 0.50),
            "p95": _percentile_ms(per_question, 0.95),
            "p99": _percentile_ms(per_question, 0.99),
        },
        "modules": {
            m: {
                "total_s": sum(per_module[m]),
                "p50_ms": _percentile_ms(per_module[m], 0.50),
                "p95_ms": _percentile_ms(per_module[m], 0.95),
            }
            for m in _MODULES
        },
    }
    return results, stats


def _chunks(
    seq: t.Sequence[tuple[int, str]], size: int
) -> t.Iterator[t.Sequence[tuple[int, str]]]:
    for i in range(0, len(seq), size):
        yield seq[i : i + size]


def _run_workload_batched(
    pipeline: QAPipeline,
    workload: t.Sequence[tuple[int, str]],
    warmup: int,
    batch_size: int,
) -> tuple[list[QAResult], dict[str, t.Any]]:
    """Answer the workload in batches of ``batch_size`` questions."""
    for chunk in _chunks(workload[:warmup], batch_size):
        pipeline.answer_batch([c[1] for c in chunk], [c[0] for c in chunk])
    results: list[QAResult] = []
    sharing: list[float] = []
    fetches = shared = 0
    distinct = 0
    t0 = time.perf_counter()
    for chunk in _chunks(workload, batch_size):
        results.extend(
            pipeline.answer_batch([c[1] for c in chunk], [c[0] for c in chunk])
        )
        bs = pipeline.last_batch_stats
        sharing.append(bs.sharing_factor)
        fetches += bs.postings_fetches
        shared += bs.postings_shared
        distinct += bs.n_distinct
    wall_s = time.perf_counter() - t0
    stats = {
        "batch_size": batch_size,
        "wall_s": wall_s,
        "questions_per_sec": len(workload) / wall_s if wall_s > 0 else 0.0,
        "sharing_factor_mean": sum(sharing) / len(sharing) if sharing else 1.0,
        "distinct_executed": distinct,
        "postings_fetches": fetches,
        "postings_shared": shared,
    }
    return results, stats


def run_throughput_bench(config: BenchConfig | None = None) -> dict[str, t.Any]:
    """Run the baseline-vs-optimized throughput comparison."""
    config = config or BenchConfig()
    corpus = generate_corpus(CorpusConfig(seed=config.corpus_seed))
    t0 = time.perf_counter()
    indexed = IndexedCorpus(corpus, conjunction_cache=config.conjunction_cache)
    index_build_s = time.perf_counter() - t0

    # Packed-payload round trip: what a cold parallel worker pays to get a
    # queryable index, vs. rebuilding it from corpus text.
    t0 = time.perf_counter()
    payload_blob = pickle.dumps(
        indexes_to_payload(indexed.indexes), protocol=pickle.HIGHEST_PROTOCOL
    )
    serialize_s = time.perf_counter() - t0
    cold_vocab = Vocabulary()
    t0 = time.perf_counter()
    attached_indexes = attach_payload(
        corpus, pickle.loads(payload_blob), vocabulary=cold_vocab
    )
    attach_s = time.perf_counter() - t0
    footprint = memory_footprint(indexed.indexes)

    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )

    # Zipf-popular workload: rank r drawn with probability ∝ 1/r^s, so a
    # handful of popular questions repeat — the regime the conjunction
    # cache targets (and what production question streams look like).
    questions = generate_questions(corpus)
    unique = questions[: max(1, min(config.n_unique, len(questions)))]
    rng = np.random.default_rng(config.workload_seed)
    weights = 1.0 / np.arange(1, len(unique) + 1) ** config.zipf_exponent
    weights /= weights.sum()
    picks = rng.choice(len(unique), size=config.n_questions, p=weights)
    workload = [(unique[i].qid, unique[i].text) for i in picks]

    baseline_pipeline = QAPipeline(
        indexed.reconfigured(conjunction_cache=0, galloping=False),
        recognizer,
        use_term_index=False,
    )
    optimized_pipeline = QAPipeline(indexed, recognizer, use_term_index=True)
    attached_pipeline = QAPipeline(
        IndexedCorpus(
            corpus,
            indexes=attached_indexes,
            conjunction_cache=config.conjunction_cache,
        ),
        recognizer,
        use_term_index=True,
    )

    base_results, base_stats = _run_workload(
        baseline_pipeline, workload, config.warmup
    )
    opt_results, opt_stats = _run_workload(
        optimized_pipeline, workload, config.warmup
    )
    att_results, att_stats = _run_workload(
        attached_pipeline, workload, config.warmup
    )
    opt_stats["conjunction_cache"] = [
        r.cache_stats for r in optimized_pipeline.indexed.retrievers
    ]

    # Three-way equivalence gate: naive rebuild, packed build, packed attach.
    opt_fingerprints = [_fingerprint(r) for r in opt_results]
    mismatches = [
        i
        for i, (a, c) in enumerate(zip(base_results, att_results))
        if not (_fingerprint(a) == opt_fingerprints[i] == _fingerprint(c))
    ]

    # Batched columns: the same workload through answer_batch at each
    # batch size, each on a fresh retriever stack, each fingerprint-gated
    # against the serial optimized run.  The largest size also runs on
    # the attached (worker-path) indexes — serial vs batched vs
    # attached-worker batched must all be bit-identical.
    batched: dict[str, dict[str, t.Any]] = {}
    batched_mismatches: dict[str, list[int]] = {}
    for batch_size in config.batch_sizes:
        pipeline = QAPipeline(
            indexed.reconfigured(conjunction_cache=config.conjunction_cache),
            recognizer,
            use_term_index=True,
        )
        b_results, b_stats = _run_workload_batched(
            pipeline, workload, config.warmup, batch_size
        )
        bad = [
            i
            for i, r in enumerate(b_results)
            if _fingerprint(r) != opt_fingerprints[i]
        ]
        if bad:
            batched_mismatches[str(batch_size)] = bad[:20]
        batched[str(batch_size)] = b_stats
    attached_batched: dict[str, t.Any] | None = None
    if config.batch_sizes:
        largest = max(config.batch_sizes)
        ab_pipeline = QAPipeline(
            IndexedCorpus(
                corpus,
                indexes=attached_indexes,
                conjunction_cache=config.conjunction_cache,
            ),
            recognizer,
            use_term_index=True,
        )
        ab_results, attached_batched = _run_workload_batched(
            ab_pipeline, workload, config.warmup, largest
        )
        bad = [
            i
            for i, r in enumerate(ab_results)
            if _fingerprint(r) != opt_fingerprints[i]
        ]
        if bad:
            batched_mismatches["attached"] = bad[:20]

    # Exact-selection column: same workload on a fresh optimized stack
    # whose PR fan-out is routed by an exact selector — prunes provably
    # empty collections, so the fingerprints must still match the serial
    # optimized run exactly (the four-way equivalence gate).
    selected: dict[str, t.Any] | None = None
    selection_mismatches: list[int] = []
    if config.selection:
        sel_corpus = indexed.reconfigured(
            conjunction_cache=config.conjunction_cache
        )
        sel_pipeline = QAPipeline(
            sel_corpus,
            recognizer,
            use_term_index=True,
            selector=sel_corpus.selector(mode="exact"),
        )
        sel_results, selected = _run_workload(
            sel_pipeline, workload, config.warmup
        )
        selection_mismatches = [
            i
            for i, r in enumerate(sel_results)
            if _fingerprint(r) != opt_fingerprints[i]
        ][:20]
        # Routing decisions are pure functions of the keywords; recount
        # them outside the timed run for the prune-rate columns.
        selector = sel_pipeline.pr.selector
        n_cells = pruned_cells = 0
        prune_rates: list[float] = []
        for qid, text in workload:
            processed = sel_pipeline.qp.process(Question(qid=qid, text=text))
            decision = selector.select(list(processed.keywords))
            n_cells += decision.n_collections
            pruned_cells += len(decision.pruned)
            prune_rates.append(decision.prune_rate)
        selected["prune_rate_mean"] = (
            sum(prune_rates) / len(prune_rates) if prune_rates else 0.0
        )
        selected["collections_pruned"] = pruned_cells
        selected["collections_total"] = n_cells
        selected["postings_scanned_total"] = float(
            sum(r.work[POSTINGS_SCANNED] for r in sel_results)
        )
        selected["sketch_bytes"] = selector.sketch_bytes()

    def _qps(column: str) -> float:
        return batched.get(column, {}).get("questions_per_sec", 0.0)

    batch_speedup = {
        column: (_qps(column) / _qps("1") if _qps("1") > 0 else 0.0)
        for column in batched
    }
    stats = indexed.total_stats()
    return {
        "schema": "bench_throughput/v4",
        "config": asdict(config),
        "index": {
            "build_s": index_build_s,
            "serialize_s": serialize_s,
            "attach_s": attach_s,
            "attach_speedup": (
                index_build_s / attach_s if attach_s > 0 else float("inf")
            ),
            "payload_bytes": len(payload_blob),
            "memory": footprint,
            **stats,
        },
        "workload": {
            "n_questions": len(workload),
            "n_unique": len(unique),
            "zipf_exponent": config.zipf_exponent,
        },
        "baseline": base_stats,
        "optimized": opt_stats,
        "attached": att_stats,
        "selected": selected,
        "batched": batched,
        "attached_batched": attached_batched,
        "batch_speedup": batch_speedup,
        "speedup": (
            base_stats["wall_s"] / opt_stats["wall_s"]
            if opt_stats["wall_s"] > 0
            else float("inf")
        ),
        "equivalence": {
            "equivalent": (
                not mismatches
                and not batched_mismatches
                and not selection_mismatches
            ),
            "n_checked": len(workload),
            "mismatches": mismatches[:20],
            "batched_mismatches": batched_mismatches,
            "selection_mismatches": selection_mismatches,
        },
    }


def format_throughput(summary: dict[str, t.Any]) -> str:
    """Render the benchmark summary as an ASCII report section."""
    lines = []
    wl = summary["workload"]
    lines.append("Throughput — precomputed term index vs re-tokenize baseline")
    lines.append("=" * len(lines[0]))
    ix = summary["index"]
    lines.append(
        f"workload: {wl['n_questions']} questions over {wl['n_unique']} unique"
        f" (Zipf s={wl['zipf_exponent']}), index build"
        f" {ix['build_s']:.2f} s"
    )
    mem = ix.get("memory", {})
    if "attach_s" in ix:
        lines.append(
            f"index artifact: serialize {ix['serialize_s'] * 1e3:.1f} ms,"
            f" attach {ix['attach_s'] * 1e3:.1f} ms"
            f" ({ix['attach_speedup']:.1f}x faster than rebuild),"
            f" payload {ix['payload_bytes'] / 1e6:.2f} MB"
        )
    if "dict_layout_bytes" in mem:
        lines.append(
            f"index memory: packed {mem['packed_bytes'] / 1e6:.2f} MB vs dict"
            f" layout {mem['dict_layout_bytes'] / 1e6:.2f} MB"
            f" ({mem['reduction']:.1f}x smaller)"
        )
    header = (
        f"{'Run':<10} | {'q/s':>8} | {'p50 ms':>8} | {'p95 ms':>8} | "
        f"{'PS ms p50':>9} | {'AP ms p50':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in ("baseline", "optimized", "attached", "selected"):
        s = summary.get(name)
        if s is None:
            continue
        lines.append(
            f"{name:<10} | {s['questions_per_sec']:>8.2f} |"
            f" {s['latency_ms']['p50']:>8.2f} | {s['latency_ms']['p95']:>8.2f} |"
            f" {s['modules']['ps']['p50_ms']:>9.3f} |"
            f" {s['modules']['ap']['p50_ms']:>9.3f}"
        )
    sel = summary.get("selected")
    if sel:
        lines.append(
            f"exact selection: prune rate {sel['prune_rate_mean'] * 100:.1f} %"
            f" ({sel['collections_pruned']}/{sel['collections_total']}"
            f" collections), sketches {sel['sketch_bytes'] / 1e3:.1f} kB"
        )
    batched = summary.get("batched") or {}
    if batched:
        bheader = (
            f"{'Batch':<10} | {'q/s':>8} | {'vs B=1':>7} | {'sharing':>7} | "
            f"{'fetches':>8} | {'shared':>8}"
        )
        lines.append(bheader)
        lines.append("-" * len(bheader))
        speedups = summary.get("batch_speedup", {})
        for column in sorted(batched, key=int):
            s = batched[column]
            lines.append(
                f"B={column:<8} | {s['questions_per_sec']:>8.2f} |"
                f" {speedups.get(column, 0.0):>6.2f}x |"
                f" {s['sharing_factor_mean']:>7.2f} |"
                f" {s['postings_fetches']:>8} | {s['postings_shared']:>8}"
            )
        ab = summary.get("attached_batched")
        if ab:
            lines.append(
                f"attached B={ab['batch_size']}: {ab['questions_per_sec']:.2f} q/s,"
                f" sharing {ab['sharing_factor_mean']:.2f}"
            )
    eq = summary["equivalence"]
    n_bad = len(eq["mismatches"]) + sum(
        len(v) for v in eq.get("batched_mismatches", {}).values()
    )
    verdict = "identical" if eq["equivalent"] else f"MISMATCH x{n_bad}"
    lines.append(
        f"speedup: {summary['speedup']:.2f}x end-to-end; outputs {verdict}"
        f" over {eq['n_checked']} questions"
    )
    return "\n".join(lines)


def validate_bench_throughput(summary: dict[str, t.Any]) -> None:
    """Schema check for ``BENCH_throughput.json`` — raises on drift.

    Guards the contract downstream consumers (CI smoke asserts, the
    benchmark report, trend tooling) rely on: the version string, the
    serial columns, since v3 the batched columns with their sharing
    stats, and since v4 the exact-selection column with its prune-rate
    stats and the four-way equivalence gate.
    """
    if summary.get("schema") != "bench_throughput/v4":
        raise ValueError(f"unexpected schema: {summary.get('schema')!r}")
    for key in ("config", "index", "workload", "equivalence", "speedup"):
        if key not in summary:
            raise ValueError(f"missing top-level key: {key}")
    for column in ("baseline", "optimized", "attached"):
        run = summary[column]
        for key in ("wall_s", "questions_per_sec", "latency_ms", "modules"):
            if key not in run:
                raise ValueError(f"{column} missing {key}")
    batched = summary.get("batched")
    if not isinstance(batched, dict):
        raise ValueError("v3 summary must carry a 'batched' mapping")
    for column, run in batched.items():
        for key in (
            "batch_size",
            "wall_s",
            "questions_per_sec",
            "sharing_factor_mean",
            "postings_fetches",
            "postings_shared",
        ):
            if key not in run:
                raise ValueError(f"batched[{column}] missing {key}")
    if "batch_speedup" not in summary:
        raise ValueError("v3 summary must carry 'batch_speedup'")
    if "selected" not in summary:
        raise ValueError("v4 summary must carry a 'selected' column")
    sel = summary["selected"]
    if sel is not None:
        for key in (
            "questions_per_sec",
            "prune_rate_mean",
            "collections_pruned",
            "collections_total",
            "postings_scanned_total",
            "sketch_bytes",
        ):
            if key not in sel:
                raise ValueError(f"selected missing {key}")
    eq = summary["equivalence"]
    for key in (
        "equivalent",
        "n_checked",
        "mismatches",
        "batched_mismatches",
        "selection_mismatches",
    ):
        if key not in eq:
            raise ValueError(f"equivalence missing {key}")


def write_bench_json(
    summary: dict[str, t.Any], path: str | pathlib.Path
) -> pathlib.Path:
    """Write ``summary`` to ``path`` as pretty-printed JSON."""
    out = pathlib.Path(path)
    out.write_text(json.dumps(summary, indent=2, sort_keys=False) + "\n")
    return out
