"""Figures 7, 8 and 9 — traces and analytical speedup curves.

* Figure 7 — execution traces of one complex question on a homogeneous
  4-node cluster under RECV PR partitioning combined with SEND, ISEND or
  RECV answer-processing partitioning.
* Figure 8(a) — analytical *system* speedup (inter-question model) up to
  1000 processors for 10 Mbps / 100 Mbps / 1 Gbps networks.
* Figure 9 — analytical *question* speedup (intra-question model):
  (a) fixed 1 Gbps disk, varying network; (b) fixed 1 Gbps network,
  varying disk.
"""

from __future__ import annotations

import typing as t

import numpy as np

from ..core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
    render_trace,
)
from ..model import ModelParameters, bandwidth_bps, question_speedup, system_speedup
from .context import complex_profiles
from .parallel import run_cells
from .report import format_series

__all__ = [
    "run_fig7_trace",
    "run_fig8",
    "format_fig8",
    "run_fig9",
    "format_fig9",
]


def run_fig7_trace(
    ap_strategy: PartitioningStrategy = PartitioningStrategy.RECV,
    seed: int = 7,
) -> str:
    """One question's trace on 4 nodes (Figure 7 style)."""
    profile = complex_profiles(1, seed=seed)[0]
    policy = TaskPolicy(ap_strategy=ap_strategy)
    system = DistributedQASystem(
        SystemConfig(n_nodes=4, strategy=Strategy.DQA, policy=policy, trace=True)
    )
    system.run_workload([profile])
    header = (
        f"Figure 7 trace: RECV for PR/PS, {ap_strategy.value} for AP "
        f"(question {profile.qid}, {profile.n_accepted} accepted paragraphs)"
    )
    return header + "\n" + render_trace(system.tracer.events)


def _speedup_series(
    spec: tuple[str, float | None, float | None, ModelParameters, tuple[int, ...]]
) -> list[tuple[float, float]]:
    """Pool worker: one analytic speedup curve (system or question).

    ``b_net``/``b_disk`` are bits/second overrides (None keeps the
    parameter set's value).
    """
    kind, b_net, b_disk, params, ns = spec
    p = params.with_bandwidths(b_net=b_net, b_disk=b_disk)
    fn = system_speedup if kind == "system" else question_speedup
    return [(float(n), fn(p, n)) for n in ns]


def run_fig8(
    net_labels: t.Sequence[str] = ("10 Mbps", "100 Mbps", "1 Gbps"),
    max_n: int = 1000,
    step: int = 50,
    params: ModelParameters | None = None,
    jobs: int | str | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 8(a): analytical system speedup vs processor count."""
    params = params or ModelParameters()
    ns = tuple(sorted(set(list(range(1, max_n + 1, step)) + [max_n])))
    specs = [
        ("system", bandwidth_bps(label), None, params, ns)
        for label in net_labels
    ]
    return dict(zip(net_labels, run_cells(_speedup_series, specs, jobs=jobs)))


def format_fig8(series: dict[str, list[tuple[float, float]]]) -> str:
    """Render Figure 8(a) as an ASCII chart plus the data columns."""
    from .ascii_chart import ascii_chart

    return (
        ascii_chart(
            series,
            title="Figure 8(a): analytical system speedup vs processors",
            x_label="processors",
            y_label="speedup",
        )
        + "\n\n"
        + format_series("Figure 8(a) data", series, x_label="N")
    )


def run_fig9(
    params: ModelParameters | None = None,
    max_n: int = 200,
    step: int = 10,
    jobs: int | str | None = None,
) -> tuple[dict[str, list[tuple[float, float]]], dict[str, list[tuple[float, float]]]]:
    """Figure 9: question speedup curves.

    Returns (panel_a, panel_b): (a) disk fixed at 1 Gbps, network swept
    over 1 Mbps..1 Gbps; (b) network fixed at 1 Gbps, disk swept over
    100 Mbps..1 Gbps.
    """
    params = params or ModelParameters()
    ns = tuple(sorted(set(list(range(1, max_n + 1, step)) + [max_n])))

    a_labels = ("1 Mbps", "10 Mbps", "100 Mbps", "1 Gbps")
    b_labels = ("100 Mbps", "250 Mbps", "500 Mbps", "1 Gbps")
    gbps = bandwidth_bps("1 Gbps")
    specs = [
        ("question", bandwidth_bps(label), gbps, params, ns)
        for label in a_labels
    ] + [
        ("question", gbps, bandwidth_bps(label), params, ns)
        for label in b_labels
    ]
    curves = run_cells(_speedup_series, specs, jobs=jobs)
    panel_a = dict(zip(a_labels, curves[: len(a_labels)]))
    panel_b = dict(zip(b_labels, curves[len(a_labels) :]))
    return panel_a, panel_b


def format_fig9(
    panels: tuple[
        dict[str, list[tuple[float, float]]],
        dict[str, list[tuple[float, float]]],
    ]
) -> str:
    """Render both Figure 9 panels as ASCII charts plus data columns."""
    from .ascii_chart import ascii_chart

    a, b = panels
    return (
        ascii_chart(
            a,
            title="Figure 9(a): question speedup, disk 1 Gbps, varying network",
            x_label="processors",
        )
        + "\n\n"
        + ascii_chart(
            b,
            title="Figure 9(b): question speedup, network 1 Gbps, varying disk",
            x_label="processors",
        )
        + "\n\n"
        + format_series("Figure 9(a) data", a, x_label="N")
        + "\n\n"
        + format_series("Figure 9(b) data", b, x_label="N")
    )
