"""Shared experiment context: corpus, pipeline, and workloads.

Builds (and memoizes per process) the moderately expensive shared
artefacts — the generated corpus, its indexes, the Q/A pipeline, and the
real-pipeline question profiles — so that every benchmark does not pay
corpus generation again.
"""

from __future__ import annotations

import functools
import typing as t
from dataclasses import dataclass

from ..corpus import (
    Corpus,
    CorpusConfig,
    TrecQuestion,
    generate_corpus,
    generate_questions,
)
from ..nlp.entities import EntityRecognizer
from ..qa import (
    CostModel,
    QAPipeline,
    QuestionProfile,
    SyntheticProfileGenerator,
    SyntheticProfileParams,
    profile_question,
)
from ..retrieval import IndexedCorpus

__all__ = ["ExperimentContext", "default_context", "complex_profiles"]


@dataclass(slots=True)
class ExperimentContext:
    """Everything the real-pipeline experiments share."""

    corpus: Corpus
    indexed: IndexedCorpus
    recognizer: EntityRecognizer
    pipeline: QAPipeline
    questions: list[TrecQuestion]
    model: CostModel

    def profiles(
        self, n: int, seed_offset: int = 0
    ) -> list[QuestionProfile]:
        """Real-pipeline profiles for the first ``n`` generated questions."""
        out = []
        for q in self.questions[seed_offset : seed_offset + n]:
            out.append(
                profile_question(self.pipeline, q.text, self.model, qid=q.qid)
            )
        return out


@functools.lru_cache(maxsize=2)
def default_context(seed: int = 42) -> ExperimentContext:
    """The memoized default experiment context."""
    corpus = generate_corpus(CorpusConfig(seed=seed))
    indexed = IndexedCorpus(corpus)
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    pipeline = QAPipeline(indexed, recognizer)
    questions = generate_questions(corpus)
    return ExperimentContext(
        corpus=corpus,
        indexed=indexed,
        recognizer=recognizer,
        pipeline=pipeline,
        questions=questions,
        model=CostModel.default(),
    )


def complex_profiles(n: int, seed: int = 3) -> list[QuestionProfile]:
    """Synthetic Table 8-population profiles (complex questions).

    The paper's intra-question experiments select 307 questions "complex
    enough to justify distribution on all nodes"; this generator samples
    that population directly (DESIGN.md §2's calibrated substitution).
    """
    gen = SyntheticProfileGenerator(SyntheticProfileParams.complex(), seed=seed)
    return gen.generate_many(n)
