"""Shared experiment context: corpus, pipeline, and workloads.

Builds (and memoizes per process) the moderately expensive shared
artefacts — the generated corpus, its indexes, the Q/A pipeline, and the
real-pipeline question profiles — so that every benchmark does not pay
corpus generation again.

Two cache layers sit under :func:`build_context`:

* an in-process ``lru_cache`` keyed by the (hashable, frozen)
  :class:`~repro.corpus.CorpusConfig`, so repeated builds within one
  process — including every parallel worker, which inherits the parent's
  warm cache under a fork start method — are free;
* an on-disk corpus artifact cache keyed by :func:`corpus_cache_key`
  (a hash of the config repr plus a format version), so no process ever
  regenerates an identical corpus.  Only the raw corpus is stored:
  unpickling it is ~100x faster than regenerating, whereas the inverted
  index unpickles no faster than it rebuilds, so indexes are always
  constructed fresh from the (cached) corpus.

The disk cache is best-effort and self-healing: a missing directory,
corrupt pickle, or version mismatch silently falls back to regeneration,
and writes are atomic (``os.replace`` of a per-pid temp file) so parallel
workers racing on a cold cache cannot observe torn files.  Set the
``REPRO_CACHE_DIR`` environment variable to relocate it, or to the empty
string to disable it.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import tempfile
import typing as t
from dataclasses import dataclass
from pathlib import Path

from ..corpus import (
    Corpus,
    CorpusConfig,
    TrecQuestion,
    generate_corpus,
    generate_questions,
)
from ..nlp.entities import EntityRecognizer
from ..qa import (
    CostModel,
    QAPipeline,
    QuestionProfile,
    SyntheticProfileGenerator,
    SyntheticProfileParams,
    profile_question,
)
from ..retrieval import IndexedCorpus

__all__ = [
    "ExperimentContext",
    "build_context",
    "corpus_cache_key",
    "default_context",
    "load_or_generate_corpus",
    "complex_profiles",
]

#: Bump when the pickled corpus layout changes; stale entries are ignored.
_CACHE_FORMAT = 1


@dataclass(slots=True)
class ExperimentContext:
    """Everything the real-pipeline experiments share."""

    corpus: Corpus
    indexed: IndexedCorpus
    recognizer: EntityRecognizer
    pipeline: QAPipeline
    questions: list[TrecQuestion]
    model: CostModel

    def profiles(
        self, n: int, seed_offset: int = 0
    ) -> list[QuestionProfile]:
        """Real-pipeline profiles for the first ``n`` generated questions."""
        out = []
        for q in self.questions[seed_offset : seed_offset + n]:
            out.append(
                profile_question(self.pipeline, q.text, self.model, qid=q.qid)
            )
        return out


# -- on-disk corpus artifact cache ---------------------------------------------
def corpus_cache_key(config: CorpusConfig) -> str:
    """Stable cache key for a corpus config (hash of repr + format version).

    ``CorpusConfig`` is a frozen dataclass, so its repr enumerates every
    generation knob; two configs share a key iff they generate identical
    corpora.
    """
    payload = f"repro-corpus-v{_CACHE_FORMAT}:{config!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def corpus_cache_dir() -> Path | None:
    """The artifact cache directory, or None when caching is disabled.

    ``REPRO_CACHE_DIR`` overrides the default (a ``repro-cache`` folder
    under the system temp dir); setting it to the empty string disables
    the disk cache entirely.
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    if root == "":
        return None
    if root is None:
        root = os.path.join(tempfile.gettempdir(), "repro-cache")
    return Path(root)


def load_or_generate_corpus(config: CorpusConfig) -> Corpus:
    """Return the corpus for ``config``, via the disk cache when possible."""
    directory = corpus_cache_dir()
    if directory is None:
        return generate_corpus(config)
    path = directory / f"corpus-{corpus_cache_key(config)}.pkl"
    try:
        with open(path, "rb") as fh:
            cached = pickle.load(fh)
        if isinstance(cached, Corpus):
            return cached
    except FileNotFoundError:
        pass
    except Exception:
        # Corrupt or unreadable entry: drop it and regenerate.
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
    corpus = generate_corpus(config)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".corpus-{corpus_cache_key(config)}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(corpus, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        pass  # cache is best-effort; the generated corpus is still good
    return corpus


# -- context construction -------------------------------------------------------
@functools.lru_cache(maxsize=4)
def build_context(
    config: CorpusConfig, max_questions: int | None = None
) -> ExperimentContext:
    """Build (or recall) the full experiment context for ``config``.

    Memoized per process; the corpus itself additionally comes from the
    on-disk artifact cache, so a cold process pays only index
    construction.
    """
    corpus = load_or_generate_corpus(config)
    indexed = IndexedCorpus(corpus)
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    pipeline = QAPipeline(indexed, recognizer)
    if max_questions is None:
        questions = generate_questions(corpus)
    else:
        questions = generate_questions(corpus, max_questions=max_questions)
    return ExperimentContext(
        corpus=corpus,
        indexed=indexed,
        recognizer=recognizer,
        pipeline=pipeline,
        questions=questions,
        model=CostModel.default(),
    )


def default_context(seed: int = 42) -> ExperimentContext:
    """The memoized default experiment context."""
    return build_context(CorpusConfig(seed=seed))


def complex_profiles(n: int, seed: int = 3) -> list[QuestionProfile]:
    """Synthetic Table 8-population profiles (complex questions).

    The paper's intra-question experiments select 307 questions "complex
    enough to justify distribution on all nodes"; this generator samples
    that population directly (DESIGN.md §2's calibrated substitution).
    """
    gen = SyntheticProfileGenerator(SyntheticProfileParams.complex(), seed=seed)
    return gen.generate_many(n)
