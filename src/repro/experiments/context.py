"""Shared experiment context: corpus, pipeline, and workloads.

Builds (and memoizes per process) the moderately expensive shared
artefacts — the generated corpus, its indexes, the Q/A pipeline, and the
real-pipeline question profiles — so that every benchmark does not pay
corpus generation again.

Two cache layers sit under :func:`build_context`:

* an in-process ``lru_cache`` keyed by the (hashable, frozen)
  :class:`~repro.corpus.CorpusConfig`, so repeated builds within one
  process — including every parallel worker, which inherits the parent's
  warm cache under a fork start method — are free;
* an on-disk artifact cache keyed by :func:`corpus_cache_key` (a hash of
  the config repr plus a format version) holding **two** artifacts per
  config: the raw corpus (unpickling is ~100x faster than regenerating)
  and, since format v2, the **packed index payload**
  (:mod:`repro.retrieval.packing`).  The packed index is a handful of
  flat array buffers, so it deserializes roughly an order of magnitude
  faster than it rebuilds — a cold worker *attaches* to the index one
  process on the machine built, instead of re-paying tokenize + stem +
  intern per process.

The disk cache is best-effort and self-healing: a missing directory,
corrupt pickle, version mismatch, or an index payload that does not fit
the corpus silently falls back to regeneration, and writes are atomic
(``os.replace`` of a per-pid temp file) so parallel workers racing on a
cold cache cannot observe torn files.  Set the ``REPRO_CACHE_DIR``
environment variable to relocate it, or to the empty string to disable
it.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import tempfile
import time
import typing as t
from dataclasses import dataclass, field
from pathlib import Path

from ..corpus import (
    Corpus,
    CorpusConfig,
    TrecQuestion,
    generate_corpus,
    generate_questions,
)
from ..nlp.entities import EntityRecognizer
from ..nlp.keywords import select_keywords
from ..nlp.vocabulary import Vocabulary
from ..qa import (
    CostModel,
    QAPipeline,
    QuestionProfile,
    SyntheticProfileGenerator,
    SyntheticProfileParams,
    profile_question,
)
from ..retrieval import (
    CollectionIndex,
    IndexedCorpus,
    attach_payload,
    indexes_to_payload,
)

__all__ = [
    "ExperimentContext",
    "build_context",
    "build_serving_context",
    "corpus_cache_key",
    "default_context",
    "index_cache_selftest",
    "load_or_build_indexes",
    "load_or_generate_corpus",
    "complex_profiles",
    "sweep_stale_cache_dirs",
]

#: Bump when a pickled artifact layout changes; stale entries are ignored.
#: v2 added the packed-index payload next to the corpus pickle.
_CACHE_FORMAT = 2


@dataclass(slots=True)
class ExperimentContext:
    """Everything the real-pipeline experiments share."""

    corpus: Corpus
    indexed: IndexedCorpus
    recognizer: EntityRecognizer
    pipeline: QAPipeline
    questions: list[TrecQuestion]
    model: CostModel
    #: How the indexes came to be: "built" (tokenized from the corpus) or
    #: "cache" (attached to the packed on-disk payload), and the seconds
    #: that took — the build-vs-attach gap the v2 artifact exists for.
    index_source: str = "built"
    index_seconds: float = field(default=0.0, compare=False)

    def profiles(
        self, n: int, seed_offset: int = 0
    ) -> list[QuestionProfile]:
        """Real-pipeline profiles for the first ``n`` generated questions."""
        out = []
        for q in self.questions[seed_offset : seed_offset + n]:
            out.append(
                profile_question(self.pipeline, q.text, self.model, qid=q.qid)
            )
        return out


# -- on-disk corpus artifact cache ---------------------------------------------
def corpus_cache_key(config: CorpusConfig) -> str:
    """Stable cache key for a corpus config (hash of repr + format version).

    ``CorpusConfig`` is a frozen dataclass, so its repr enumerates every
    generation knob; two configs share a key iff they generate identical
    corpora.
    """
    payload = f"repro-corpus-v{_CACHE_FORMAT}:{config!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def corpus_cache_dir() -> Path | None:
    """The artifact cache directory, or None when caching is disabled.

    ``REPRO_CACHE_DIR`` overrides the default (a ``repro-cache`` folder
    under the system temp dir); setting it to the empty string disables
    the disk cache entirely.
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    if root == "":
        return None
    if root is None:
        root = os.path.join(tempfile.gettempdir(), "repro-cache")
    return Path(root)


def load_or_generate_corpus(config: CorpusConfig) -> Corpus:
    """Return the corpus for ``config``, via the disk cache when possible."""
    directory = corpus_cache_dir()
    if directory is None:
        return generate_corpus(config)
    path = directory / f"corpus-{corpus_cache_key(config)}.pkl"
    try:
        with open(path, "rb") as fh:
            cached = pickle.load(fh)
        if isinstance(cached, Corpus):
            return cached
    except FileNotFoundError:
        pass
    except Exception:
        # Corrupt or unreadable entry: drop it and regenerate.
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
    corpus = generate_corpus(config)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".corpus-{corpus_cache_key(config)}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(corpus, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        pass  # cache is best-effort; the generated corpus is still good
    return corpus


def _gauge_index_metrics(
    metrics: t.Any, indexes: list[CollectionIndex], source: str, seconds: float
) -> None:
    """Set the packed-index gauges on ``metrics`` (a MetricsRegistry)."""
    from ..observability.names import (
        INDEX_ATTACH_S,
        INDEX_BUILD_S,
        INDEX_MEMORY_BYTES,
        VOCABULARY_SIZE,
    )

    name = INDEX_ATTACH_S if source == "cache" else INDEX_BUILD_S
    metrics.gauge(name).set(seconds)
    metrics.gauge(INDEX_MEMORY_BYTES).set(
        float(sum(ix.stats.memory_bytes for ix in indexes))
    )
    if indexes:
        metrics.gauge(VOCABULARY_SIZE).set(float(len(indexes[0].vocab)))


def load_or_build_indexes(
    corpus: Corpus, config: CorpusConfig, metrics: t.Any = None
) -> tuple[list[CollectionIndex], str, float]:
    """Collection indexes for ``corpus``, attaching to the v2 disk artifact.

    Returns ``(indexes, source, seconds)`` where ``source`` is ``"cache"``
    when the packed payload was attached and ``"built"`` when the indexes
    were (re)built from the corpus text.  Any payload problem — missing
    file, corrupt pickle, schema mismatch, or a payload that does not fit
    this corpus — is treated as a cache miss: the entry is dropped,
    indexes are rebuilt, and a fresh payload is written atomically.

    ``metrics`` (a :class:`~repro.observability.metrics.MetricsRegistry`)
    optionally receives the canonical build/attach/memory gauges.
    """
    directory = corpus_cache_dir()
    path = (
        None
        if directory is None
        else directory / f"index-{corpus_cache_key(config)}.pkl"
    )
    if path is not None:
        start = time.perf_counter()
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            indexes = attach_payload(corpus, payload)
            elapsed = time.perf_counter() - start
            if metrics is not None:
                _gauge_index_metrics(metrics, indexes, "cache", elapsed)
            return indexes, "cache", elapsed
        except FileNotFoundError:
            pass
        except Exception:
            # Corrupt, stale-schema, or corpus-mismatched entry: self-heal.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
    start = time.perf_counter()
    indexes = [CollectionIndex(coll) for coll in corpus.collections]
    elapsed = time.perf_counter() - start
    if metrics is not None:
        _gauge_index_metrics(metrics, indexes, "built", elapsed)
    if path is not None:
        try:
            directory.mkdir(parents=True, exist_ok=True)
            tmp = directory / f".index-{corpus_cache_key(config)}.{os.getpid()}.tmp"
            with open(tmp, "wb") as fh:
                pickle.dump(
                    indexes_to_payload(indexes),
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        except OSError:
            pass  # cache is best-effort; the built indexes are still good
    return indexes, "built", elapsed


# -- context construction -------------------------------------------------------
@functools.lru_cache(maxsize=4)
def build_context(
    config: CorpusConfig, max_questions: int | None = None
) -> ExperimentContext:
    """Build (or recall) the full experiment context for ``config``.

    Memoized per process; the corpus and its packed indexes additionally
    come from the on-disk artifact cache, so a cold process attaches to
    both instead of regenerating either.
    """
    corpus = load_or_generate_corpus(config)
    indexes, index_source, index_seconds = load_or_build_indexes(corpus, config)
    indexed = IndexedCorpus(corpus, indexes=indexes)
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    pipeline = QAPipeline(indexed, recognizer)
    if max_questions is None:
        questions = generate_questions(corpus)
    else:
        questions = generate_questions(corpus, max_questions=max_questions)
    return ExperimentContext(
        corpus=corpus,
        indexed=indexed,
        recognizer=recognizer,
        pipeline=pipeline,
        questions=questions,
        model=CostModel.default(),
        index_source=index_source,
        index_seconds=index_seconds,
    )


def build_serving_context(
    config: CorpusConfig, metrics: t.Any = None, selection: str = "off"
) -> ExperimentContext:
    """Worker-side context: attach to the cached artifacts, skip questions.

    Serving workers receive question *text* over the request queue, so
    unlike :func:`build_context` they never need the generated question
    set — only a queryable pipeline.  A worker on a warm machine pays
    one corpus unpickle plus one packed-payload attach (both from the v2
    disk artifact its parent wrote), no tokenize/stem/intern rebuild.
    Not memoized: each worker process calls it exactly once.

    ``selection`` routes the paragraph-retrieval fan-out: ``"off"``
    broadcasts to every collection (legacy, bit-identical), ``"exact"``
    prunes provably-empty collections, ``"predictive"`` keeps the
    best-scoring ones mediator-style.  Exact/predictive sketches ride
    the same v2 artifact the worker just attached, so no extra build
    cost on a warm cache.
    """
    corpus = load_or_generate_corpus(config)
    indexes, index_source, index_seconds = load_or_build_indexes(
        corpus, config, metrics
    )
    indexed = IndexedCorpus(corpus, indexes=indexes)
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    selector = None if selection == "off" else indexed.selector(mode=selection)
    return ExperimentContext(
        corpus=corpus,
        indexed=indexed,
        recognizer=recognizer,
        pipeline=QAPipeline(
            indexed, recognizer, metrics=metrics, selector=selector
        ),
        questions=[],
        model=CostModel.default(),
        index_source=index_source,
        index_seconds=index_seconds,
    )


#: Naming scheme of per-process cache sandboxes (the test suite's
#: ``REPRO_CACHE_DIR``): ``<prefix><pid>-<token>`` in the system tempdir.
STALE_CACHE_PREFIX = "repro-test-cache-"


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` currently names a live process."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, just not ours
        return True
    except OSError:
        return True  # be conservative: never sweep on uncertainty
    return True


def sweep_stale_cache_dirs(
    root: str | Path | None = None, prefix: str = STALE_CACHE_PREFIX
) -> list[Path]:
    """Remove per-process cache sandboxes whose owning process is gone.

    The test suite gives every pytest session its own ``REPRO_CACHE_DIR``
    named ``<prefix><pid>-<token>`` and registers ``atexit`` cleanup —
    but ``atexit`` never runs when the process is killed, so orphaned
    sandboxes accumulate in the tempdir.  This sweep (run at the start of
    the next session) deletes any sandbox whose embedded pid no longer
    names a live process.  Directories that do not match the strict
    ``<prefix><digits>-...`` shape are left alone.

    Returns the directories removed.
    """
    import shutil

    base = Path(root) if root is not None else Path(tempfile.gettempdir())
    removed: list[Path] = []
    try:
        entries = list(base.iterdir())
    except OSError:
        return removed
    for entry in entries:
        name = entry.name
        if not name.startswith(prefix):
            continue
        pid_part = name[len(prefix):].split("-", 1)[0]
        if not pid_part.isdigit():
            continue
        if _pid_alive(int(pid_part)):
            continue
        if not entry.is_dir():
            continue
        shutil.rmtree(entry, ignore_errors=True)
        if not entry.exists():
            removed.append(entry)
    return removed


def index_cache_selftest(
    config: CorpusConfig | None = None, n_questions: int = 12
) -> dict[str, t.Any]:
    """Cold-vs-warm round-trip check for the v2 packed-index artifact.

    Builds the indexes from scratch, serializes them, attaches the
    payload under a *fresh* vocabulary (a cold worker's view), and
    verifies two properties CI gates on:

    * ``roundtrip_identical`` — re-serializing the attached indexes under
      their own vocabulary reproduces the original payload byte for byte;
    * ``queries_identical`` — built and attached indexes return identical
      matched docs, paragraph keys, and work counters for the first
      ``n_questions`` generated questions.
    """
    config = config or CorpusConfig(
        n_collections=2, docs_per_collection=20, vocab_size=500, seed=17
    )
    corpus = load_or_generate_corpus(config)
    built = [CollectionIndex(coll) for coll in corpus.collections]
    blob = pickle.dumps(
        indexes_to_payload(built), protocol=pickle.HIGHEST_PROTOCOL
    )
    cold_vocab = Vocabulary()
    attached = attach_payload(corpus, pickle.loads(blob), vocabulary=cold_vocab)
    blob_again = pickle.dumps(
        indexes_to_payload(attached, vocabulary=cold_vocab),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    roundtrip_identical = blob == blob_again

    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    corpus_built = IndexedCorpus(corpus, indexes=built)
    corpus_attached = IndexedCorpus(corpus, indexes=attached)
    queries_identical = True
    for q in generate_questions(corpus, max_questions=n_questions):
        keywords = select_keywords(q.text, recognizer)
        for a, b in zip(
            corpus_built.retrieve_all(keywords),
            corpus_attached.retrieve_all(keywords),
        ):
            if (
                a.matched_docs != b.matched_docs
                or [p.key for p in a.paragraphs] != [p.key for p in b.paragraphs]
                or a.postings_scanned != b.postings_scanned
                or a.doc_bytes_read != b.doc_bytes_read
            ):
                queries_identical = False
    return {
        "payload_bytes": len(blob),
        "roundtrip_identical": roundtrip_identical,
        "queries_identical": queries_identical,
        "ok": roundtrip_identical and queries_identical,
    }


def default_context(seed: int = 42) -> ExperimentContext:
    """The memoized default experiment context."""
    return build_context(CorpusConfig(seed=seed))


def complex_profiles(n: int, seed: int = 3) -> list[QuestionProfile]:
    """Synthetic Table 8-population profiles (complex questions).

    The paper's intra-question experiments select 307 questions "complex
    enough to justify distribution on all nodes"; this generator samples
    that population directly (DESIGN.md §2's calibrated substitution).
    """
    gen = SyntheticProfileGenerator(SyntheticProfileParams.complex(), seed=seed)
    return gen.generate_many(n)
