"""Extension: the related-work load balancers the paper lists but never runs.

The paper's related work surveys the gradient model [23, 25, 28] and
sender/receiver-initiated diffusion [31, 35], and its conclusion cites the
accepted fact that "receiver-controlled algorithms achieve better
performance than sender-controlled algorithms" — but its load-balancing
evaluation only contains sender-initiated question migration (the
dispatchers push work away from loaded nodes).  This experiment adds the
missing columns: the gradient model pushing queued questions hop-by-hop
down a logical ring, and idle nodes *pulling* queued questions (work
stealing) — alone and combined with the paper's DQA machinery.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from ..core import DistributedQASystem, Strategy, SystemConfig
from ..workload import high_load_count, staggered_arrivals, trec_mix_profiles
from .report import TextTable

__all__ = ["StealRow", "run_stealing", "format_stealing"]


@dataclass(frozen=True, slots=True)
class StealRow:
    label: str
    throughput_qpm: float
    mean_response_s: float
    steals_per_run: float


def run_stealing(
    n_nodes: int = 8,
    seeds: t.Sequence[int] = (11, 23, 37),
) -> list[StealRow]:
    """Compare sender-initiated migration with receiver-initiated stealing."""
    n_q = high_load_count(n_nodes)
    variants: list[tuple[str, SystemConfig]] = [
        ("DNS (no balancing)", SystemConfig(n_nodes=n_nodes, strategy=Strategy.DNS)),
        ("INTER (sender-initiated)",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.INTER)),
        ("DNS + gradient model [23]",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.DNS,
                      gradient_balancing=True)),
        ("DNS + stealing (receiver-initiated)",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.DNS, work_stealing=True)),
        ("DQA (paper)", SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA)),
        ("DQA + stealing",
         SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA, work_stealing=True)),
    ]
    rows = []
    for label, config in variants:
        thr, resp, steals = [], [], []
        for seed in seeds:
            profiles = trec_mix_profiles(n_q, seed=seed)
            arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
            system = DistributedQASystem(config)
            rep = system.run_workload(profiles, arrivals)
            thr.append(rep.throughput_qpm)
            resp.append(rep.mean_response_s)
            moves = system.steals_attempted
            if system.gradient is not None:
                moves += system.gradient.pushes
            steals.append(moves)
        rows.append(
            StealRow(
                label=label,
                throughput_qpm=float(np.mean(thr)),
                mean_response_s=float(np.mean(resp)),
                steals_per_run=float(np.mean(steals)),
            )
        )
    return rows


def format_stealing(rows: t.Sequence[StealRow]) -> str:
    """Render the stealing-comparison rows as a text table."""
    table = TextTable(
        "Extension: related-work load balancers (8 nodes, high load)",
        ["Variant", "Throughput (q/min)", "Mean response (s)", "Moves"],
    )
    for r in rows:
        table.add_row(
            r.label, r.throughput_qpm, r.mean_response_s, r.steals_per_run
        )
    return table.render()
