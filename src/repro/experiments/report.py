"""Plain-text table/series rendering for experiment reports.

Every experiment driver returns structured rows plus a human-readable
rendering in the style of the paper's tables, so benchmark output can be
eyeballed against the original.
"""

from __future__ import annotations

import typing as t

__all__ = ["TextTable", "format_series"]


class TextTable:
    """A minimal fixed-width text table builder."""

    def __init__(self, title: str, columns: t.Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * len(self.title), header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def format_series(
    title: str,
    series: t.Mapping[str, t.Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as aligned columns (figure data)."""
    lines = [title, "=" * len(title)]
    names = list(series)
    header = f"{x_label:>10} " + " ".join(f"{n:>14}" for n in names)
    lines.append(header)
    xs = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {
        name: {x: y for x, y in pts} for name, pts in series.items()
    }
    for x in xs:
        cells = []
        for name in names:
            y = lookup[name].get(x)
            cells.append(f"{y:>14.2f}" if y is not None else " " * 14)
        lines.append(f"{x:>10g} " + " ".join(cells))
    return "\n".join(lines)
