"""Extension experiments: robustness of the distributed Q/A design.

Three studies the paper's design goals call for but its evaluation does
not isolate ("scalability: avoid hot points and single points of failure;
flexibility: processors must be able to dynamically join or leave"):

* **Heterogeneous clusters** — halve two nodes' CPU speed and compare the
  partitioning strategies.  The pull-based RECV should degrade gracefully
  (slow nodes simply pull fewer chunks) while the weight-based senders
  suffer, since the load metric cannot see static speed differences.
* **Node churn** — nodes leave and rejoin mid-workload; the membership
  protocol must route around them with bounded damage.
* **DNS cache skew** — imperfect round-robin (cached assignments pin
  whole client networks to one node); the dispatchers should absorb the
  skew that cripples plain DNS.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, replace

import numpy as np

from ..core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from ..core.node import NodeConfig
from ..simulation import FailureSchedule
from ..workload import high_load_count, staggered_arrivals, trec_mix_profiles
from .context import complex_profiles
from .report import TextTable

__all__ = [
    "run_heterogeneous",
    "format_heterogeneous",
    "run_churn",
    "format_churn",
    "run_cache_skew",
    "format_cache_skew",
]


# --- heterogeneous clusters ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HeteroRow:
    strategy: str
    homogeneous_ap_s: float
    heterogeneous_ap_s: float

    @property
    def degradation(self) -> float:
        return self.heterogeneous_ap_s / self.homogeneous_ap_s


def run_heterogeneous(
    n_nodes: int = 8,
    slow_nodes: t.Sequence[int] = (2, 5),
    slow_factor: float = 0.5,
    n_questions: int = 8,
    seed: int = 3,
) -> list[HeteroRow]:
    """Compare partitioning strategies on a cluster with slow nodes."""
    profiles = complex_profiles(n_questions, seed=seed)
    overrides = {nid: NodeConfig(cpu_speed=slow_factor) for nid in slow_nodes}
    rows = []
    for strategy in PartitioningStrategy:
        times = {}
        for label, node_overrides in (("homo", None), ("hetero", overrides)):
            acc = []
            for prof in profiles:
                system = DistributedQASystem(
                    SystemConfig(
                        n_nodes=n_nodes,
                        strategy=Strategy.DQA,
                        policy=TaskPolicy(ap_strategy=strategy),
                        node_overrides=node_overrides,
                    )
                )
                acc.append(
                    system.run_workload([prof]).results[0].module_times["AP"]
                )
            times[label] = float(np.mean(acc))
        rows.append(
            HeteroRow(
                strategy=strategy.value,
                homogeneous_ap_s=times["homo"],
                heterogeneous_ap_s=times["hetero"],
            )
        )
    return rows


def format_heterogeneous(rows: t.Sequence[HeteroRow]) -> str:
    """Render the heterogeneity rows as a text table."""
    table = TextTable(
        "Extension: heterogeneous cluster (2 of 8 nodes at half CPU speed)",
        ["AP strategy", "AP homo (s)", "AP hetero (s)", "degradation"],
    )
    for r in rows:
        table.add_row(
            r.strategy, r.homogeneous_ap_s, r.heterogeneous_ap_s,
            f"{r.degradation:.2f}x",
        )
    return table.render()


# --- node churn ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChurnResult:
    n_questions: int
    completed_no_retry: int
    completed_with_retry: int
    throughput_qpm: float
    baseline_throughput_qpm: float


def _churn_schedule(n_nodes: int) -> FailureSchedule:
    return (
        FailureSchedule()
        .kill_at(60.0, n_nodes - 1)
        .recover_at(240.0, n_nodes - 1)
        .kill_at(120.0, n_nodes - 2)
        .recover_at(300.0, n_nodes - 2)
    )


def run_churn(
    n_nodes: int = 8,
    seed: int = 11,
) -> ChurnResult:
    """Run the high-load workload through two node outages."""
    n_q = high_load_count(n_nodes)
    profiles = trec_mix_profiles(n_q, seed=seed)
    arrivals = staggered_arrivals(n_q, 2.0, seed=seed)

    baseline = DistributedQASystem(
        SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA)
    ).run_workload(profiles, arrivals)

    plain = DistributedQASystem(SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA))
    plain.failures.apply(_churn_schedule(n_nodes))
    no_retry = plain.run_workload(profiles, arrivals)

    retrying = DistributedQASystem(
        SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA)
    )
    retrying.failures.apply(_churn_schedule(n_nodes))
    with_retry = retrying.run_workload(profiles, arrivals, resubmit_failed=3)

    return ChurnResult(
        n_questions=n_q,
        completed_no_retry=sum(1 for r in no_retry.results if not r.failed),
        completed_with_retry=sum(
            1 for r in with_retry.results if not r.failed
        ),
        throughput_qpm=with_retry.throughput_qpm,
        baseline_throughput_qpm=baseline.throughput_qpm,
    )


def format_churn(result: ChurnResult) -> str:
    """Render the churn outcome as a text table."""
    table = TextTable(
        "Extension: node churn (two of eight nodes leave and rejoin)",
        ["Questions", "Completed (no retry)", "Completed (retry<=3)",
         "Throughput w/ retry", "No-churn baseline"],
    )
    table.add_row(
        result.n_questions,
        result.completed_no_retry,
        result.completed_with_retry,
        result.throughput_qpm,
        result.baseline_throughput_qpm,
    )
    return table.render()


# --- DNS cache skew ---------------------------------------------------------------------


def run_cache_skew(
    n_nodes: int = 8,
    skews: t.Sequence[float] = (0.0, 0.5, 0.8),
    seeds: t.Sequence[int] = (11, 23, 37),
) -> list[tuple[float, float, float]]:
    """Returns (skew, DNS throughput, DQA throughput) rows (seed means)."""
    n_q = high_load_count(n_nodes)
    out = []
    for skew in skews:
        means = {}
        for strategy in (Strategy.DNS, Strategy.DQA):
            acc = []
            for seed in seeds:
                profiles = trec_mix_profiles(n_q, seed=seed)
                arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
                system = DistributedQASystem(
                    SystemConfig(
                        n_nodes=n_nodes, strategy=strategy,
                        dns_cache_skew=skew, seed=seed,
                    )
                )
                acc.append(system.run_workload(profiles, arrivals).throughput_qpm)
            means[strategy] = float(np.mean(acc))
        out.append((skew, means[Strategy.DNS], means[Strategy.DQA]))
    return out


def format_cache_skew(rows: t.Sequence[tuple[float, float, float]]) -> str:
    """Render the cache-skew rows as a text table."""
    table = TextTable(
        "Extension: DNS cache skew (sticky assignments) — DNS vs DQA",
        ["Cache skew", "DNS throughput (q/min)", "DQA throughput (q/min)"],
    )
    for skew, dns, dqa in rows:
        table.add_row(skew, dns, dqa)
    return table.render()
