"""Scale-out sweep: run the paper's 1000-node extrapolation for real.

Section 5 stops at the 12-processor testbed and *extrapolates* Eq 9-23
to 1000 processors (Figures 8-9).  With the calendar-queue scheduler
(:mod:`repro.simulation.calendar`) and sharded load monitoring
(``SystemConfig.monitor_shards``) the simulator executes those
configurations directly: a weak-scaling sweep — ``q`` questions per
processor, the regime Eq 23 assumes — over 16 → 32 → ... → 1000 nodes,
under each AP partitioning strategy (SEND / ISEND / RECV; PR always uses
RECV, as in the paper), cross-checking measured system speedup against
Eq 23 at every decade and recording simulator throughput (events/sec)
and wall clock per cell.

Three cell families feed one ``BENCH_scale.json``:

* the **primary sweep** (calendar queue + ~sqrt(N) monitor shards) for
  every (strategy, N) pair — speedup cross-check data;
* a **queue-backend comparison** re-running the RECV column on the heap
  backend with identical seeds — both backends must produce identical
  event counts and workload reports (the firing-order gate at workload
  scale), and their wall-clock ratio isolates the scheduler's cost;
* a **pre-sharding baseline** (heap + full O(N^2) broadcast monitoring)
  at selected node counts — the events/sec win the tentpole claims is
  new-configuration vs this baseline on the same workload.
"""

from __future__ import annotations

import json
import os
import time
import typing as t
from dataclasses import asdict, dataclass

from ..core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from ..core.monitor import auto_shard_count
from ..model import ModelParameters, system_speedup
from ..workload import staggered_arrivals, trec_mix_profiles
from .parallel import run_cells
from .report import TextTable

__all__ = [
    "ScaleCell",
    "run_scale",
    "format_scale",
    "write_scale_json",
    "validate_bench_scale",
    "DEFAULT_NODE_COUNTS",
]

#: Weak-scaling ladder: every doubling from 16, plus the paper's 1000.
DEFAULT_NODE_COUNTS = (16, 32, 64, 128, 256, 512, 1000)


@dataclass(frozen=True, slots=True)
class ScaleCell:
    """One simulated (N, strategy, queue backend, monitoring) cell."""

    n_nodes: int
    ap_strategy: str
    queue_impl: str
    monitor_shards: int
    n_questions: int
    events: int
    wall_s: float
    events_per_s: float
    throughput_qpm: float
    mean_response_s: float


def _scale_cell(
    spec: tuple[int, str, str, int, int, int]
) -> ScaleCell:
    """Pool worker: simulate one cell and time it."""
    n_nodes, ap_strategy, queue_impl, shards, seed, qpn = spec
    n_q = qpn * n_nodes
    profiles = trec_mix_profiles(n_q, seed=seed)
    arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
    system = DistributedQASystem(
        SystemConfig(
            n_nodes=n_nodes,
            strategy=Strategy.DQA,
            seed=seed,
            queue_impl=queue_impl,
            monitor_shards=shards,
            policy=TaskPolicy(
                ap_strategy=PartitioningStrategy[ap_strategy]
            ),
            collect_metrics=False,
        )
    )
    t0 = time.perf_counter()
    report = system.run_workload(profiles, arrivals)
    wall = time.perf_counter() - t0
    events = next(system.env._seq)
    return ScaleCell(
        n_nodes=n_nodes,
        ap_strategy=ap_strategy,
        queue_impl=queue_impl,
        monitor_shards=shards,
        n_questions=n_q,
        events=events,
        wall_s=wall,
        events_per_s=events / wall if wall > 0 else 0.0,
        throughput_qpm=report.throughput_qpm,
        mean_response_s=report.mean_response_s,
    )


def run_scale(
    node_counts: t.Sequence[int] = DEFAULT_NODE_COUNTS,
    strategies: t.Sequence[str] = ("SEND", "ISEND", "RECV"),
    questions_per_node: int = 4,
    seed: int = 11,
    baseline_at: t.Sequence[int] | None = None,
    params: ModelParameters | None = None,
    jobs: int | str | None = None,
) -> dict[str, t.Any]:
    """Run the full sweep and assemble the ``BENCH_scale.json`` payload.

    ``baseline_at`` selects the node counts that additionally run the
    pre-sharding heap baseline; the default is every N >= 256 in
    ``node_counts`` (falling back to the largest N for truncated smoke
    sweeps).  The O(N^2) baseline at very large N is exactly the cost
    this PR removes, so expect those cells to dominate the wall clock.
    """
    params = params or ModelParameters()
    node_counts = tuple(sorted(set(node_counts)))
    if baseline_at is None:
        baseline_at = tuple(n for n in node_counts if n >= 256) or (
            max(node_counts),
        )
    baseline_at = tuple(sorted(set(baseline_at) & set(node_counts)))
    gate_strategy = strategies[-1]

    specs: list[tuple[int, str, str, int, int, int]] = []
    # Primary sweep: the new configuration, every strategy and size.
    # N=1 anchors the weak-scaling speedup ratio.
    for strategy in strategies:
        for n in (1,) + node_counts:
            specs.append(
                (
                    n,
                    strategy,
                    "calendar",
                    auto_shard_count(n),
                    seed,
                    questions_per_node,
                )
            )
    # Queue-backend comparison: identical workload on the heap.
    for n in node_counts:
        specs.append(
            (
                n,
                gate_strategy,
                "heap",
                auto_shard_count(n),
                seed,
                questions_per_node,
            )
        )
    # Pre-sharding baseline: heap + full-broadcast monitoring.
    for n in baseline_at:
        specs.append((n, gate_strategy, "heap", 0, seed, questions_per_node))

    cells = run_cells(_scale_cell, specs, jobs=jobs)
    by_key = {
        (c.n_nodes, c.ap_strategy, c.queue_impl, c.monitor_shards): c
        for c in cells
    }

    def cell(n: int, strategy: str, queue: str, shards: int) -> ScaleCell:
        return by_key[(n, strategy, queue, shards)]

    # -- Eq 23 cross-check at every decade, per strategy -------------------
    crosscheck = []
    for strategy in strategies:
        base = cell(1, strategy, "calendar", auto_shard_count(1))
        for n in node_counts:
            c = cell(n, strategy, "calendar", auto_shard_count(n))
            measured = (
                c.throughput_qpm / base.throughput_qpm
                if base.throughput_qpm
                else 0.0
            )
            analytical = system_speedup(params, n)
            crosscheck.append(
                {
                    "n_nodes": n,
                    "ap_strategy": strategy,
                    "measured_speedup": measured,
                    "analytical_speedup": analytical,
                    "rel_err": abs(measured - analytical) / analytical,
                }
            )

    # -- firing-order gate at workload scale --------------------------------
    # The two backends simulate the identical seeded workload; equal event
    # counts and bit-equal workload reports mean the schedules never
    # diverged (the full per-event log diff runs in `repro simbench`).
    order_checks = []
    for n in node_counts:
        cal = cell(n, gate_strategy, "calendar", auto_shard_count(n))
        heap = cell(n, gate_strategy, "heap", auto_shard_count(n))
        order_checks.append(
            {
                "n_nodes": n,
                "identical": (
                    cal.events == heap.events
                    and cal.throughput_qpm == heap.throughput_qpm
                    and cal.mean_response_s == heap.mean_response_s
                ),
                "calendar_events_per_s": cal.events_per_s,
                "heap_events_per_s": heap.events_per_s,
            }
        )
    order_identical = all(c["identical"] for c in order_checks)

    # -- events/sec win vs the pre-sharding baseline -------------------------
    wins = []
    for n in baseline_at:
        new = cell(n, gate_strategy, "calendar", auto_shard_count(n))
        old = cell(n, gate_strategy, "heap", 0)
        wins.append(
            {
                "n_nodes": n,
                "new_events_per_s": new.events_per_s,
                "baseline_events_per_s": old.events_per_s,
                "new_wall_s": new.wall_s,
                "baseline_wall_s": old.wall_s,
                "events_per_s_ratio": (
                    new.events_per_s / old.events_per_s
                    if old.events_per_s
                    else float("inf")
                ),
                "win": new.events_per_s > old.events_per_s,
            }
        )

    return {
        "schema": "scale-v1",
        "cpu_count": os.cpu_count(),
        "seed": seed,
        "questions_per_node": questions_per_node,
        "node_counts": list(node_counts),
        "strategies": list(strategies),
        "cells": [asdict(c) for c in cells],
        "crosscheck": crosscheck,
        "order_checks": order_checks,
        "order_identical": order_identical,
        "baseline_wins": wins,
        "ok": order_identical,
    }


def format_scale(summary: dict[str, t.Any]) -> str:
    """Human-readable report of a scale sweep."""
    lines = [
        f"Scale-out sweep (cpu_count={summary['cpu_count']}, "
        f"q/node={summary['questions_per_node']}, seed={summary['seed']})",
        "",
    ]
    table = TextTable(
        "Eq 23 cross-check: measured vs analytical system speedup",
        ["N", "Strategy", "Measured", "Eq 23", "rel err"],
    )
    for row in summary["crosscheck"]:
        table.add_row(
            row["n_nodes"],
            row["ap_strategy"],
            row["measured_speedup"],
            row["analytical_speedup"],
            f"{row['rel_err'] * 100:.1f} %",
        )
    lines.append(table.render())
    lines.append("")

    gate = TextTable(
        "Queue backends on identical workloads (firing-order gate)",
        ["N", "identical", "calendar ev/s", "heap ev/s"],
    )
    for row in summary["order_checks"]:
        gate.add_row(
            row["n_nodes"],
            str(row["identical"]),
            f"{row['calendar_events_per_s']:,.0f}",
            f"{row['heap_events_per_s']:,.0f}",
        )
    lines.append(gate.render())
    lines.append("")

    if summary["baseline_wins"]:
        wins = TextTable(
            "New configuration vs pre-sharding baseline (heap + O(N^2) "
            "monitoring)",
            ["N", "new ev/s", "baseline ev/s", "ratio", "win"],
        )
        for row in summary["baseline_wins"]:
            wins.add_row(
                row["n_nodes"],
                f"{row['new_events_per_s']:,.0f}",
                f"{row['baseline_events_per_s']:,.0f}",
                f"{row['events_per_s_ratio']:.2f}x",
                str(row["win"]),
            )
        lines.append(wins.render())
        lines.append("")

    lines.append(
        f"firing order identical across backends: "
        f"{summary['order_identical']}"
    )
    return "\n".join(lines)


def write_scale_json(
    summary: dict[str, t.Any], path: str = "BENCH_scale.json"
) -> str:
    """Write the summary as JSON; returns the path written."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def validate_bench_scale(summary: dict[str, t.Any]) -> None:
    """Schema contract for ``BENCH_scale.json`` (CI / trend tooling).

    Raises :class:`ValueError` on the first violation.
    """
    if summary.get("schema") != "scale-v1":
        raise ValueError(
            f"unexpected schema {summary.get('schema')!r}, want 'scale-v1'"
        )
    for key in (
        "cells",
        "crosscheck",
        "order_checks",
        "order_identical",
        "baseline_wins",
        "node_counts",
        "ok",
    ):
        if key not in summary:
            raise ValueError(f"missing top-level key {key!r}")
    cell_keys = {
        "n_nodes", "ap_strategy", "queue_impl", "monitor_shards",
        "events", "wall_s", "events_per_s", "throughput_qpm",
    }
    for cell in summary["cells"]:
        missing = cell_keys - set(cell)
        if missing:
            raise ValueError(f"cell missing keys {sorted(missing)}")
    for row in summary["crosscheck"]:
        for key in ("n_nodes", "measured_speedup", "analytical_speedup",
                    "rel_err"):
            if key not in row:
                raise ValueError(f"crosscheck row missing {key!r}")
    if not summary["order_identical"]:
        raise ValueError(
            "artifact records a firing-order divergence between backends"
        )
