"""Table 2 — analysis of the Q/A modules.

Reproduces the per-module breakdown of the sequential Q/A task: fraction
of task time, whether the module is iterative, and its iteration
granularity.  Paper values (TREC-9): QP 1.2 %, PR 26.5 %, PS 2.2 %,
PO 0.1 %, AP 69.7 %.

Module times are the *simulated* per-module durations derived from real
pipeline work via the calibrated cost model — the same quantities the
distributed experiments consume.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from .context import ExperimentContext, default_context
from .report import TextTable

__all__ = ["ModuleRow", "run_table2", "format_table2", "PAPER_TABLE2"]

#: Paper's TREC-9 column of Table 2 (fraction of task time).
PAPER_TABLE2: dict[str, float] = {
    "QP": 0.012,
    "PR": 0.265,
    "PS": 0.022,
    "PO": 0.001,
    "AP": 0.697,
}

_ITERATIVE: dict[str, tuple[bool, str]] = {
    "QP": (False, "-"),
    "PR": (True, "Collection"),
    "PS": (True, "Paragraph"),
    "PO": (False, "-"),
    "AP": (True, "Paragraph"),
}


@dataclass(frozen=True, slots=True)
class ModuleRow:
    module: str
    mean_seconds: float
    fraction: float
    paper_fraction: float
    iterative: bool
    granularity: str


def run_table2(
    ctx: ExperimentContext | None = None, n_questions: int = 60
) -> list[ModuleRow]:
    """Measure the per-module breakdown over real-pipeline profiles."""
    ctx = ctx or default_context()
    sums = {m: [] for m in ("QP", "PR", "PS", "PO", "AP")}
    for prof in ctx.profiles(n_questions):
        secs = prof.sequential_module_seconds(ctx.model)
        for m, v in secs.items():
            sums[m].append(v)
    means = {m: float(np.mean(v)) for m, v in sums.items()}
    total = sum(means.values())
    rows = []
    for m in ("QP", "PR", "PS", "PO", "AP"):
        iterative, gran = _ITERATIVE[m]
        rows.append(
            ModuleRow(
                module=m,
                mean_seconds=means[m],
                fraction=means[m] / total,
                paper_fraction=PAPER_TABLE2[m],
                iterative=iterative,
                granularity=gran,
            )
        )
    return rows


def format_table2(rows: t.Sequence[ModuleRow]) -> str:
    """Render Table 2 with the paper's percentage column."""
    table = TextTable(
        "Table 2: analysis of Q/A modules (TREC-9 column)",
        ["Module", "Mean time (s)", "% of task", "Paper %", "Iterative?",
         "Granularity"],
    )
    for r in rows:
        table.add_row(
            r.module,
            r.mean_seconds,
            f"{r.fraction * 100:.1f} %",
            f"{r.paper_fraction * 100:.1f} %",
            "Yes" if r.iterative else "No",
            r.granularity,
        )
    total = sum(r.mean_seconds for r in rows)
    table.add_row("TOTAL", total, "100.0 %", "100.0 %", "", "")
    return table.render()
