"""Analytical-model parameters (the Figure 8(b) table, reconstructed).

The OCR of Fig 8(b) is unreadable, so the parameter values are
reconstructed from the constraints the paper itself states (DESIGN.md §4):

* the intra-question constants are fitted so that Eq 34's practical
  processor limits reproduce **all 16 cells of Table 4 exactly**;
* the inter-question constants are calibrated so the system efficiency is
  ~0.9 at (1000 processors, 1 Gbps) and (100 processors, 100 Mbps), as
  Section 5.1 reports;
* the migration probabilities come from Table 7's DQA column
  (e.g. 37/96 QA migrations on 12 processors).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelParameters", "bandwidth_bps"]


def bandwidth_bps(label: str) -> float:
    """Parse bandwidth labels like '100 Mbps' / '1 Gbps' into bits/s."""
    value, unit = label.split()
    scale = {"Kbps": 1e3, "Mbps": 1e6, "Gbps": 1e9}[unit]
    return float(value) * scale


@dataclass(frozen=True, slots=True)
class ModelParameters:
    """All constants of the Section 5 analytical model.

    Times are seconds, sizes bytes, bandwidths bits/second.
    """

    # --- sequential module times on the testbed (Table 8, 1 processor) ---
    t_qp: float = 0.81
    t_ps: float = 2.06
    t_po: float = 0.02
    t_ap: float = 117.55
    #: CPU component of paragraph retrieval (PR is 20 % CPU, Table 3).
    t_pr_cpu: float = 7.60
    #: Bytes PR streams from disk; t_pr = t_pr_cpu + d_pr/b_disk.
    d_pr: float = 1.030e9

    # --- fixed distribution overheads (Eq 27-29, fitted to Table 4) ---
    #: Paragraph traffic over the network during partitioning (n_p and
    #: n_pa paragraphs of size s_p, both directions).
    v_net: float = 1.255e6
    #: Fixed partition-management time (assignment, merging, sorting).
    t_fix: float = 1.405

    # --- workload statistics (TREC-9, Section 5 notation) ---
    n_keywords: float = 6.0  # n_k
    n_paragraphs: float = 1800.0  # n_p, retrieved
    n_accepted: float = 600.0  # n_pa, after PO
    n_answers: float = 5.0  # n_a
    s_keyword: float = 10.0  # bytes
    s_paragraph: float = 2000.0  # bytes
    s_answer: float = 250.0  # bytes
    s_question: float = 80.0  # bytes
    s_load: float = 2048.0  # load broadcast packet
    t_load: float = 1e-3  # local load measurement
    q_per_processor: float = 4.0  # q, simultaneous questions/processor
    t_question: float = 94.0  # average sequential question time

    # --- migration probabilities (Table 7, DQA, 12 processors) ---
    p_qa: float = 37.0 / 96.0
    p_pr: float = 43.0 / 96.0
    p_ap: float = 41.0 / 96.0
    #: Probability a Q/A task touches the network at a given time.
    p_net: float = 0.08

    # --- platform bandwidths (defaults: the testbed) ---
    b_net: float = 100e6  # bits/s
    b_disk: float = 270e6  # bits/s (~34 MB/s: matches t_pr = 38.01 s)
    b_mem: float = 800e6  # bits/s

    # --- dispatcher scan cost per node (Eq 15) ---
    t_dispatch_per_node: float = 1e-5

    def with_bandwidths(
        self, b_net: float | None = None, b_disk: float | None = None
    ) -> "ModelParameters":
        """Copy with different network/disk bandwidths (bits/second)."""
        kwargs: dict[str, float] = {}
        if b_net is not None:
            kwargs["b_net"] = b_net
        if b_disk is not None:
            kwargs["b_disk"] = b_disk
        return replace(self, **kwargs)

    # -- derived quantities ------------------------------------------------------
    @property
    def t_pr(self) -> float:
        """Paragraph retrieval time at the configured disk bandwidth."""
        return self.t_pr_cpu + self.d_pr / (self.b_disk / 8.0)

    @property
    def t_sequential(self) -> float:
        """Full sequential question time at the configured bandwidths."""
        return self.t_qp + self.t_pr + self.t_ps + self.t_po + self.t_ap
