"""Fitting model parameters to measured data.

Two fitters:

* :func:`fit_intra_constants` — least-squares fit of the four intra-model
  constants (T_par's CPU part, D_PR, T_fix, V_net) against a grid of
  (bandwidths -> N_max) observations such as Table 4.  This is how the
  shipped defaults were derived; the regression test pins the result.
* :func:`fit_from_simulation` — refit T_fix/V_net from measured simulated
  runs (Table 10's analytical-vs-measured comparison uses it in reverse:
  the *analytical* prediction uses the independently calibrated defaults).
"""

from __future__ import annotations

import typing as t

import numpy as np

from .intra_question import practical_processor_limit, question_speedup
from .parameters import ModelParameters, bandwidth_bps

__all__ = ["fit_intra_constants", "grid_error", "PAPER_TABLE4_N"]

#: Table 4 of the paper: (disk label, net label) -> practical N limit.
PAPER_TABLE4_N: dict[tuple[str, str], int] = {
    ("100 Mbps", "1 Mbps"): 17,
    ("100 Mbps", "10 Mbps"): 64,
    ("100 Mbps", "100 Mbps"): 89,
    ("100 Mbps", "1 Gbps"): 93,
    ("250 Mbps", "1 Mbps"): 13,
    ("250 Mbps", "10 Mbps"): 49,
    ("250 Mbps", "100 Mbps"): 68,
    ("250 Mbps", "1 Gbps"): 71,
    ("500 Mbps", "1 Mbps"): 12,
    ("500 Mbps", "10 Mbps"): 43,
    ("500 Mbps", "100 Mbps"): 61,
    ("500 Mbps", "1 Gbps"): 64,
    ("1 Gbps", "1 Mbps"): 11,
    ("1 Gbps", "10 Mbps"): 41,
    ("1 Gbps", "100 Mbps"): 57,
    ("1 Gbps", "1 Gbps"): 60,
}

#: Table 4's speedups at the practical limits, for shape checks.
PAPER_TABLE4_S: dict[tuple[str, str], float] = {
    ("100 Mbps", "1 Mbps"): 8.65,
    ("100 Mbps", "10 Mbps"): 32.84,
    ("100 Mbps", "100 Mbps"): 45.75,
    ("100 Mbps", "1 Gbps"): 47.73,
    ("250 Mbps", "1 Mbps"): 6.61,
    ("250 Mbps", "10 Mbps"): 25.30,
    ("250 Mbps", "100 Mbps"): 35.33,
    ("250 Mbps", "1 Gbps"): 36.87,
    ("500 Mbps", "1 Mbps"): 6.01,
    ("500 Mbps", "10 Mbps"): 22.49,
    ("500 Mbps", "100 Mbps"): 31.81,
    ("500 Mbps", "1 Gbps"): 33.28,
    ("1 Gbps", "1 Mbps"): 5.59,
    ("1 Gbps", "10 Mbps"): 21.35,
    ("1 Gbps", "100 Mbps"): 29.90,
    ("1 Gbps", "1 Gbps"): 31.34,
}


def grid_error(
    params: ModelParameters,
    observations: t.Mapping[tuple[str, str], int] = PAPER_TABLE4_N,
) -> float:
    """Mean relative error of predicted N_max against observations."""
    errs = []
    for (disk, net), n_obs in observations.items():
        p = params.with_bandwidths(
            b_net=bandwidth_bps(net), b_disk=bandwidth_bps(disk)
        )
        n_pred = practical_processor_limit(p)
        errs.append(abs(n_pred - n_obs) / n_obs)
    return float(np.mean(errs))


def fit_intra_constants(
    base: ModelParameters | None = None,
    observations: t.Mapping[tuple[str, str], int] = PAPER_TABLE4_N,
    d_pr_grid: t.Sequence[float] = tuple(np.linspace(0.9e9, 1.2e9, 13)),
    t_fix_grid: t.Sequence[float] = tuple(np.linspace(1.0, 1.8, 17)),
    v_net_grid: t.Sequence[float] = tuple(np.linspace(1.0e6, 1.5e6, 21)),
) -> ModelParameters:
    """Coarse grid search for (D_PR, T_fix, V_net) minimizing grid error.

    Coarse but deterministic: this is a calibration utility, run once to
    produce the shipped defaults, not a hot path.
    """
    from dataclasses import replace

    base = base or ModelParameters()
    best = base
    best_err = grid_error(base, observations)
    for d_pr in d_pr_grid:
        for t_fix in t_fix_grid:
            for v_net in v_net_grid:
                cand = replace(base, d_pr=d_pr, t_fix=t_fix, v_net=v_net)
                err = grid_error(cand, observations)
                if err < best_err - 1e-12:
                    best, best_err = cand, err
    return best
