"""Intra-question parallelism model (Section 5.2, Eq 24-36).

The question execution time on an N-node system decomposes into a
parallelizable part and a sequential-plus-overhead part:

    T_N   = T_par / N + T_seq                                  (Eq 31)
    T_par = T_PR + T_PS + T_AP                                 (Eq 32)
    T_seq = T_QP + T_PO + T_fix + V_net / B_net                (Eq 33)

where T_PR itself depends on the disk bandwidth
(``T_PR = T_PR_cpu + D_PR / B_disk``), V_net is the paragraph traffic of
the partitioned PR and AP modules (Eq 27-29), and T_fix the fixed
partition-management time.  It is "worth increasing the number of
processors as long as [T_par/N] is the significant part of T_N":

    N_max = T_par / T_seq                                      (Eq 34)

and the question speedup is

    S(N) = T_1 / (T_par/N + T_seq)                             (Eq 36).

With the calibrated default parameters this reproduces Table 4's N values
in all 16 cells and its speedups within ~2 %.
"""

from __future__ import annotations

import math
import typing as t
from dataclasses import dataclass

import numpy as np

from .parameters import ModelParameters

__all__ = [
    "parallel_time",
    "sequential_overhead_time",
    "question_time",
    "question_speedup",
    "practical_processor_limit",
    "speedup_curve",
    "IntraLimit",
    "upper_limit_grid",
]


def parallel_time(p: ModelParameters) -> float:
    """Eq 32: T_par — the module time that divides by N."""
    return p.t_pr + p.t_ps + p.t_ap


def sequential_overhead_time(p: ModelParameters) -> float:
    """Eq 33: T_seq — sequential modules plus distribution overhead."""
    return p.t_qp + p.t_po + p.t_fix + p.v_net / (p.b_net / 8.0)


def question_time(p: ModelParameters, n: float) -> float:
    """Eq 31: T_N for a given processor count."""
    if n < 1:
        raise ValueError("processor count must be >= 1")
    return parallel_time(p) / n + sequential_overhead_time(p)


def question_speedup(p: ModelParameters, n: float) -> float:
    """Eq 36: S(N) = T_1 / T_N.

    Note T_1 is the plain sequential time (no partitioning overhead).
    """
    return p.t_sequential / question_time(p, n)


def practical_processor_limit(p: ModelParameters) -> int:
    """Eq 34: N_max = floor(T_par / T_seq)."""
    return int(parallel_time(p) / sequential_overhead_time(p))


def speedup_curve(
    p: ModelParameters, n_values: t.Sequence[int]
) -> list[tuple[int, float]]:
    """S(N) over a range of processor counts (the Figure 9 series)."""
    return [(int(n), question_speedup(p, n)) for n in n_values]


@dataclass(frozen=True, slots=True)
class IntraLimit:
    """One Table 4 cell."""

    b_disk_label: str
    b_net_label: str
    n_max: int
    speedup: float


def upper_limit_grid(
    base: ModelParameters,
    disk_labels: t.Sequence[str] = ("100 Mbps", "250 Mbps", "500 Mbps", "1 Gbps"),
    net_labels: t.Sequence[str] = ("1 Mbps", "10 Mbps", "100 Mbps", "1 Gbps"),
) -> list[IntraLimit]:
    """Regenerate Table 4: N_max and S(N_max) over a bandwidth grid."""
    from .parameters import bandwidth_bps

    out: list[IntraLimit] = []
    for d in disk_labels:
        for n in net_labels:
            p = base.with_bandwidths(
                b_net=bandwidth_bps(n), b_disk=bandwidth_bps(d)
            )
            n_max = practical_processor_limit(p)
            out.append(
                IntraLimit(
                    b_disk_label=d,
                    b_net_label=n,
                    n_max=n_max,
                    speedup=question_speedup(p, n_max),
                )
            )
    return out
