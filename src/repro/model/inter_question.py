"""Inter-question parallelism model (Section 5.1, Eq 9-23).

System speedup when N nodes each run q questions with all three
dispatchers active but no partitioning (the high-load regime):

    S(N) = N / (1 + T_dist(N) / T̄)                        (Eq 12/23)

with the per-question distribution overhead

    T_dist(N) = T_loadmon + T_dispatch + T_migration:

* load monitoring (Eq 14): every second each node measures its load
  (t_load), broadcasts S_load bytes on a medium shared by N broadcasters,
  and stores N peer entries; over a question lasting T̄ seconds that is
  ``T̄ · (t_load + N·S_load/B_net + N·S_load/B_mem)``;
* dispatch (Eq 15): the three dispatchers each scan N load entries;
* migration (Eq 16-20): with probabilities p_qa/p_pr/p_ap the question,
  the paragraphs, or the accepted paragraphs move across the network,
  whose available bandwidth is reduced by the N·q·p_net concurrent users.
"""

from __future__ import annotations

import typing as t

from .parameters import ModelParameters

__all__ = [
    "monitoring_overhead",
    "dispatch_overhead",
    "migration_overhead",
    "distribution_overhead",
    "system_speedup",
    "system_efficiency",
    "speedup_curve",
]


def monitoring_overhead(p: ModelParameters, n: float) -> float:
    """Eq 14: load-monitoring overhead over one question's lifetime."""
    per_second = (
        p.t_load
        + n * p.s_load / (p.b_net / 8.0)
        + n * p.s_load / (p.b_mem / 8.0)
    )
    return p.t_question * per_second


def dispatch_overhead(p: ModelParameters, n: float) -> float:
    """Eq 15: three dispatchers scanning N load-table entries each."""
    return 3.0 * p.t_dispatch_per_node * n


def migration_overhead(p: ModelParameters, n: float) -> float:
    """Eq 20: expected migration traffic at contended bandwidth.

    The effective per-transfer bandwidth is ``B_net / (N·q·p_net)`` — all
    simultaneously network-active questions share the medium.
    """
    bytes_moved = (
        p.p_qa * (p.s_question + p.n_answers * p.s_answer)
        + (p.p_pr * p.n_paragraphs + p.p_ap * p.n_accepted) * p.s_paragraph
    )
    contention = n * p.q_per_processor * p.p_net
    return bytes_moved * contention / (p.b_net / 8.0)


def distribution_overhead(p: ModelParameters, n: float) -> float:
    """Eq 21: total per-question distribution overhead T_dist(N)."""
    return (
        monitoring_overhead(p, n)
        + dispatch_overhead(p, n)
        + migration_overhead(p, n)
    )


def system_speedup(p: ModelParameters, n: float) -> float:
    """Eq 23: S(N) = N / (1 + T_dist(N)/T̄)."""
    if n < 1:
        raise ValueError("processor count must be >= 1")
    return n / (1.0 + distribution_overhead(p, n) / p.t_question)


def system_efficiency(p: ModelParameters, n: float) -> float:
    """E = S(N)/N (Section 5.1 reports ~0.9 at 1000 nodes on 1 Gbps)."""
    return system_speedup(p, n) / n


def speedup_curve(
    p: ModelParameters, n_values: t.Sequence[int]
) -> list[tuple[int, float]]:
    """S(N) series for one bandwidth setting (the Figure 8(a) curves)."""
    return [(int(n), system_speedup(p, n)) for n in n_values]
