"""The Section 5 analytical performance model."""

from .calibration import (
    PAPER_TABLE4_N,
    PAPER_TABLE4_S,
    fit_intra_constants,
    grid_error,
)
from .inter_question import (
    dispatch_overhead,
    distribution_overhead,
    migration_overhead,
    monitoring_overhead,
    system_efficiency,
    system_speedup,
)
from .intra_question import (
    IntraLimit,
    parallel_time,
    practical_processor_limit,
    question_speedup,
    question_time,
    sequential_overhead_time,
    upper_limit_grid,
)
from .parameters import ModelParameters, bandwidth_bps

__all__ = [
    "IntraLimit",
    "ModelParameters",
    "PAPER_TABLE4_N",
    "PAPER_TABLE4_S",
    "bandwidth_bps",
    "dispatch_overhead",
    "distribution_overhead",
    "fit_intra_constants",
    "grid_error",
    "migration_overhead",
    "monitoring_overhead",
    "parallel_time",
    "practical_processor_limit",
    "question_speedup",
    "question_time",
    "sequential_overhead_time",
    "system_efficiency",
    "system_speedup",
    "upper_limit_grid",
]
