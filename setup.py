"""Legacy setup shim: this environment lacks the `wheel` package, which the
PEP-517 editable-install path requires. `python setup.py develop` achieves
the same editable install with plain setuptools."""
from setuptools import setup

setup()
